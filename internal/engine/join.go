package engine

import "fmt"

// Join computes res := l ⋈_{onL = onR} r, an equi-join between two template
// relations sharing the component store. Certain join fields go through a
// hash join; pairs with an uncertain join field compose the components of
// the two fields and keep one presence bit per local world (present and
// values equal). The attribute sets must be disjoint (rename first).
func (a *Arena) Join(res, l, r, onL, onR string) (*Relation, error) {
	lr, rr := a.Rel(l), a.Rel(r)
	if lr == nil || rr == nil {
		return nil, fmt.Errorf("engine: unknown relation in join (%q, %q)", l, r)
	}
	if a.Rel(res) != nil {
		return nil, fmt.Errorf("engine: relation %q already exists", res)
	}
	for _, x := range lr.Attrs {
		for _, y := range rr.Attrs {
			if x == y {
				return nil, fmt.Errorf("engine: join: attribute %q on both sides", x)
			}
		}
	}
	la, err := lr.AttrIndex(onL)
	if err != nil {
		return nil, err
	}
	ra, err := rr.AttrIndex(onR)
	if err != nil {
		return nil, err
	}

	// Bucket the certain right rows by join value; collect uncertain rows.
	bucket := make(map[int32][]int32)
	var uncR []int32
	for j := 0; j < rr.NumRows(); j++ {
		v := rr.Cols[ra][j]
		if v == Placeholder {
			uncR = append(uncR, int32(j))
		} else {
			bucket[v] = append(bucket[v], int32(j))
		}
	}

	// Phase 1: discover candidate pairs and compose the components of
	// uncertain join fields (all composition before evaluation).
	type pair struct{ li, rj int32 }
	var pairs []pair
	seen := make(map[pair]bool)
	addPair := func(li, rj int32) {
		p := pair{li, rj}
		if !seen[p] {
			seen[p] = true
			pairs = append(pairs, p)
		}
	}
	for i := 0; i < lr.NumRows(); i++ {
		if err := a.tick(); err != nil {
			return nil, err
		}
		li := int32(i)
		v := lr.Cols[la][i]
		if v != Placeholder {
			for _, rj := range bucket[v] {
				addPair(li, rj)
			}
			for _, rj := range uncR {
				if a.fieldCanTake(FieldID{Rel: rr.id, Row: rj, Attr: ra}, v) {
					addPair(li, rj)
				}
			}
			continue
		}
		lf := FieldID{Rel: lr.id, Row: li, Attr: la}
		for _, pv := range a.fieldValues(lf) {
			for _, rj := range bucket[pv] {
				addPair(li, rj)
			}
		}
		for _, rj := range uncR {
			rf := FieldID{Rel: rr.id, Row: rj, Attr: ra}
			if a.fieldsIntersect(lf, rf) {
				addPair(li, rj)
			}
		}
	}
	for _, p := range pairs {
		var fields []FieldID
		if lr.Cols[la][p.li] == Placeholder {
			fields = append(fields, FieldID{Rel: lr.id, Row: p.li, Attr: la})
		}
		if rr.Cols[ra][p.rj] == Placeholder {
			fields = append(fields, FieldID{Rel: rr.id, Row: p.rj, Attr: ra})
		}
		if len(fields) > 1 {
			if _, err := a.mergeComps(fields...); err != nil {
				return nil, err
			}
		}
	}

	// Phase 2: evaluate the match mask of every pair and drop dead pairs.
	type plannedPair struct {
		li, rj int32
		pass   []bool
		comp   *Component
	}
	var plan []plannedPair
	for _, p := range pairs {
		if err := a.tick(); err != nil {
			return nil, err
		}
		lUnc := lr.Cols[la][p.li] == Placeholder
		rUnc := rr.Cols[ra][p.rj] == Placeholder
		if !lUnc && !rUnc {
			plan = append(plan, plannedPair{li: p.li, rj: p.rj})
			continue
		}
		var comp *Component
		lf := FieldID{Rel: lr.id, Row: p.li, Attr: la}
		rf := FieldID{Rel: rr.id, Row: p.rj, Attr: ra}
		if lUnc {
			comp = a.compFor(lf)
		} else {
			comp = a.compFor(rf)
		}
		pass := make([]bool, len(comp.Rows))
		any := false
		for w := range comp.Rows {
			crow := &comp.Rows[w]
			lv, lok := lr.Cols[la][p.li], true
			if lUnc {
				col := comp.Pos(lf)
				lv, lok = crow.Vals[col], !crow.IsAbsent(col)
			}
			rv, rok := rr.Cols[ra][p.rj], true
			if rUnc {
				col := comp.Pos(rf)
				rv, rok = crow.Vals[col], !crow.IsAbsent(col)
			}
			if lok && rok && lv == rv {
				pass[w] = true
				any = true
			}
		}
		if any {
			plan = append(plan, plannedPair{li: p.li, rj: p.rj, pass: pass, comp: comp})
		}
	}

	// Phase 3: materialize the result template and extend components.
	attrs := append(append([]string{}, lr.Attrs...), rr.Attrs...)
	cols := make([][]int32, len(attrs))
	for i := range cols {
		cols[i] = make([]int32, len(plan))
	}
	for j, pp := range plan {
		for i := range lr.Attrs {
			cols[i][j] = lr.Cols[i][pp.li]
		}
		off := len(lr.Attrs)
		for i := range rr.Attrs {
			cols[off+i][j] = rr.Cols[i][pp.rj]
		}
	}
	out, err := a.addRelation(res, attrs, cols)
	if err != nil {
		return nil, err
	}
	ext := func(srcRel *Relation, srcRow int32, attrOffset, dstRow int, pp plannedPair) error {
		for _, at := range srcRel.uncertain[srcRow] {
			if err := a.tick(); err != nil {
				return err
			}
			srcF := FieldID{Rel: srcRel.id, Row: srcRow, Attr: at}
			comp := a.compFor(srcF)
			col := comp.Pos(srcF)
			vals := make([]int32, len(comp.Rows))
			absent := make([]bool, len(comp.Rows))
			for w := range comp.Rows {
				vals[w] = comp.Rows[w].Vals[col]
				absent[w] = comp.Rows[w].IsAbsent(col)
				if pp.pass != nil && comp == pp.comp && !pp.pass[w] {
					absent[w] = true
				}
			}
			di := attrOffset + int(at)
			dstF := FieldID{Rel: out.id, Row: int32(dstRow), Attr: uint16(di)}
			if err := a.addField(comp, dstF, vals, absent); err != nil {
				return err
			}
			out.Cols[di][dstRow] = Placeholder
			out.uncertain[int32(dstRow)] = append(out.uncertain[int32(dstRow)], uint16(di))
		}
		return nil
	}
	for j, pp := range plan {
		if err := a.tick(); err != nil {
			return nil, err
		}
		if err := ext(lr, pp.li, 0, j, pp); err != nil {
			return nil, err
		}
		if err := ext(rr, pp.rj, len(lr.Attrs), j, pp); err != nil {
			return nil, err
		}
		// A certain-certain pair whose sides both have no uncertain fields
		// is unconditionally present; otherwise presence is carried by the
		// extended fields (including the pass-masked join fields).
	}
	return out, nil
}

// fieldValues returns the present values of an uncertain field. It reads
// through compOf — no adoption: probe-phase rows that never join should not
// pay for a component copy.
func (a *Arena) fieldValues(f FieldID) []int32 {
	c := a.compOf(f)
	if c == nil {
		return nil
	}
	return compFieldValues(c, f)
}

// compFieldValues collects the distinct present values of field f.
//
//maybms:unguarded bounded single-component probe; the planning loops that call it tick per candidate
func compFieldValues(c *Component, f FieldID) []int32 {
	col := c.Pos(f)
	seen := make(map[int32]bool)
	var out []int32
	for _, r := range c.Rows {
		if !r.IsAbsent(col) && !seen[r.Vals[col]] {
			seen[r.Vals[col]] = true
			out = append(out, r.Vals[col])
		}
	}
	return out
}

// fieldCanTake reports whether an uncertain field can take value v
// (read-only, no adoption).
//
//maybms:unguarded bounded single-component probe; the planning loops that call it tick per candidate
func (a *Arena) fieldCanTake(f FieldID, v int32) bool {
	c := a.compOf(f)
	if c == nil {
		return false
	}
	col := c.Pos(f)
	for _, r := range c.Rows {
		if !r.IsAbsent(col) && r.Vals[col] == v {
			return true
		}
	}
	return false
}

// fieldsIntersect reports whether two uncertain fields can take a common
// value in some world. When the fields share a component the check is exact
// (joint rows); otherwise the value sets are intersected. Reads through
// compOf — adoption remaps every field of a component at once, so pointer
// equality between the resolved components stays exact.
//
//maybms:unguarded bounded single-component probe; the planning loops that call it tick per candidate
func (a *Arena) fieldsIntersect(f, g FieldID) bool {
	cf, cg := a.compOf(f), a.compOf(g)
	if cf == nil || cg == nil {
		return false
	}
	if cf == cg {
		fc, gc := cf.Pos(f), cf.Pos(g)
		for _, r := range cf.Rows {
			if !r.IsAbsent(fc) && !r.IsAbsent(gc) && r.Vals[fc] == r.Vals[gc] {
				return true
			}
		}
		return false
	}
	vals := make(map[int32]bool)
	for _, v := range a.fieldValues(f) {
		vals[v] = true
	}
	for _, v := range a.fieldValues(g) {
		if vals[v] {
			return true
		}
	}
	return false
}

// Package engine is the scalable UWSDT query engine of Sections 5 and 9:
// the role PostgreSQL plays under the paper's MayBMS prototype. Certain data
// lives in columnar int32 template relations; uncertain fields are '?'
// placeholders backed by a shared component store. Multiple relations — base
// data and query results — share one component space, so subquery results
// stay correlated with their inputs.
//
// Values are non-negative integers (the census data is exclusively
// multiple-choice codes); the sentinel Placeholder marks uncertain template
// fields. A tuple is absent from a world when any of its fields has no value
// at the chosen local world of its component (the UWSDT encoding of worlds
// of different sizes).
package engine

import (
	"fmt"
	"math"
	"sync"
)

// Placeholder is the template sentinel for an uncertain field. All real
// values must be ≥ 0.
const Placeholder int32 = -1

// FieldID identifies one field of one tuple of one relation in the store.
type FieldID struct {
	Rel  int32  // relation id (store catalog index)
	Row  int32  // 0-based row index in the template
	Attr uint16 // 0-based attribute index
}

// CompRow is one local world of a component: a value for every field plus a
// presence bit per field (a cleared bit means the field's tuple is absent
// from worlds choosing this local world), and the local world's probability.
type CompRow struct {
	Vals   []int32
	Absent Bitset
	P      float64
}

// IsAbsent reports whether field column i has no value in this local world.
func (r CompRow) IsAbsent(i int) bool { return r.Absent.Get(i) }

// MaxCompFields bounds the number of fields a single component can hold
// (including the result-field copies query operators extend it with). The
// paper measures 1–4 placeholders per component in practice (Figure 28);
// hitting this limit indicates a pathological workload and surfaces as an
// error rather than silent corruption.
const MaxCompFields = 1 << 16

// Component is one factor of the decomposition, shared by all relations
// whose fields it defines.
type Component struct {
	ID     int32
	Fields []FieldID
	Rows   []CompRow
	pos    map[FieldID]int
}

// Pos returns the column index of field f, or -1.
func (c *Component) Pos(f FieldID) int {
	if i, ok := c.pos[f]; ok {
		return i
	}
	return -1
}

// Size returns the number of local worlds.
func (c *Component) Size() int { return len(c.Rows) }

// Arity returns the number of fields.
func (c *Component) Arity() int { return len(c.Fields) }

// TotalP sums the local world probabilities.
//
//maybms:unguarded O(worlds) scalar sum used by update-path validation and renormalization
func (c *Component) TotalP() float64 {
	var s float64
	for _, r := range c.Rows {
		s += r.P
	}
	return s
}

// Relation is a columnar template relation: Cols[a][row] is the value of
// attribute a, or Placeholder when the field is uncertain.
type Relation struct {
	id    int32
	Name  string
	Attrs []string
	Cols  [][]int32
	// uncertain lists, per row, the attribute indexes holding placeholders.
	uncertain map[int32][]uint16
}

// NumRows returns the number of template rows.
func (r *Relation) NumRows() int {
	if len(r.Cols) == 0 {
		return 0
	}
	return len(r.Cols[0])
}

// AttrIndex returns the index of the named attribute, or an error.
func (r *Relation) AttrIndex(name string) (uint16, error) {
	for i, a := range r.Attrs {
		if a == name {
			return uint16(i), nil
		}
	}
	return 0, fmt.Errorf("engine: relation %s has no attribute %q", r.Name, name)
}

// UncertainRows returns the number of rows with at least one placeholder.
func (r *Relation) UncertainRows() int { return len(r.uncertain) }

// Store holds the template relations and the shared component store. Reads
// that must be safe against concurrent catalog writers go through Snapshot
// (see snapshot.go); writers serialize externally (the session API holds
// one writer at a time) and the store's own mutex only coordinates snapshot
// acquisition with the copy-on-write detach.
type Store struct {
	// mu guards cowShared and the container pointers during Snapshot,
	// detachLocked and Commit. It is not a general read/write lock: direct
	// reads of a store that is being written concurrently are the caller's
	// responsibility (use snapshots).
	mu        sync.Mutex
	cowShared bool

	rels    []*Relation
	relID   map[string]int32
	comps   map[int32]*Component
	nextCID int32
	// fieldComp maps every uncertain field to its component id.
	fieldComp map[FieldID]int32
	// scratchSeq numbers the scratch relations handed out by NewScratch.
	scratchSeq int64
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{
		relID:     make(map[string]int32),
		comps:     make(map[int32]*Component),
		fieldComp: make(map[FieldID]int32),
	}
}

// AddRelation registers a new relation with the given columns (column-major;
// all columns must have equal length and non-negative values). The store
// takes ownership of cols.
func (s *Store) AddRelation(name string, attrs []string, cols [][]int32) (*Relation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.detachLocked()
	if _, dup := s.relID[name]; dup {
		return nil, fmt.Errorf("engine: relation %q already exists", name)
	}
	if len(cols) != len(attrs) {
		return nil, fmt.Errorf("engine: %d columns for %d attributes", len(cols), len(attrs))
	}
	n := -1
	for i, c := range cols {
		if n < 0 {
			n = len(c)
		}
		if len(c) != n {
			return nil, fmt.Errorf("engine: column %s has %d rows, want %d", attrs[i], len(c), n)
		}
	}
	r := &Relation{
		id:        int32(len(s.rels)),
		Name:      name,
		Attrs:     append([]string(nil), attrs...),
		Cols:      cols,
		uncertain: make(map[int32][]uint16),
	}
	s.relID[name] = r.id
	s.rels = append(s.rels, r)
	return r, nil
}

// NewScratch returns a fresh relation name for query intermediates and
// session-scoped results. Scratch names carry a NUL byte, which no SQL
// identifier (and no sane user relation name) can contain, so they never
// collide with user relations — or with each other, thanks to the sequence
// number.
func (s *Store) NewScratch() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.scratchSeq++
	return fmt.Sprintf("\x00q%d", s.scratchSeq)
}

// RenameRelation renames a relation in the catalog. Components and field
// references are untouched: they key relations by id, not by name. The
// relation object is replaced, not edited, so live snapshots keep the old
// name.
func (s *Store) RenameRelation(old, new string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.detachLocked()
	id, ok := s.relID[old]
	if !ok {
		return fmt.Errorf("engine: unknown relation %q", old)
	}
	if _, dup := s.relID[new]; dup {
		return fmt.Errorf("engine: relation %q already exists", new)
	}
	delete(s.relID, old)
	s.relID[new] = id
	nr := *s.rels[id]
	nr.Name = new
	s.rels[id] = &nr
	return nil
}

// Rel returns the named relation, or nil.
func (s *Store) Rel(name string) *Relation {
	id, ok := s.relID[name]
	if !ok {
		return nil
	}
	return s.rels[id]
}

// Relations returns the names of all live relations.
func (s *Store) Relations() []string {
	out := make([]string, 0, len(s.relID))
	for _, r := range s.rels {
		if r != nil {
			out = append(out, r.Name)
		}
	}
	return out
}

// Component returns the component with the given id, or nil.
func (s *Store) Component(cid int32) *Component { return s.comps[cid] }

// ComponentOf returns the component defining field f, or nil.
func (s *Store) ComponentOf(f FieldID) *Component {
	cid, ok := s.fieldComp[f]
	if !ok {
		return nil
	}
	return s.comps[cid]
}

// NumComponents returns the number of live components.
func (s *Store) NumComponents() int { return len(s.comps) }

// SetUncertain replaces the field (rel, row, attr) by an or-set of values
// with probabilities (nil probs means uniform), creating a fresh component.
// The field must currently be certain.
func (s *Store) SetUncertain(rel string, row int, attr string, values []int32, probs []float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.detachLocked()
	r := s.Rel(rel)
	if r == nil {
		return fmt.Errorf("engine: unknown relation %q", rel)
	}
	ai, err := r.AttrIndex(attr)
	if err != nil {
		return err
	}
	if row < 0 || row >= r.NumRows() {
		return fmt.Errorf("engine: row %d out of range", row)
	}
	if r.Cols[ai][row] == Placeholder {
		return fmt.Errorf("engine: field (%s, %d, %s) already uncertain", rel, row, attr)
	}
	if len(values) == 0 {
		return fmt.Errorf("engine: empty or-set")
	}
	if probs != nil && len(probs) != len(values) {
		return fmt.Errorf("engine: %d probabilities for %d values", len(probs), len(values))
	}
	f := FieldID{Rel: r.id, Row: int32(row), Attr: ai}
	c := s.newComponent([]FieldID{f})
	for i, v := range values {
		if v < 0 {
			return fmt.Errorf("engine: negative value %d in or-set", v)
		}
		p := 1 / float64(len(values))
		if probs != nil {
			p = probs[i]
		}
		c.Rows = append(c.Rows, CompRow{Vals: []int32{v}, P: p})
	}
	r.Cols[ai][row] = Placeholder
	r.uncertain[int32(row)] = append(r.uncertain[int32(row)], ai)
	return nil
}

func (s *Store) newComponent(fields []FieldID) *Component {
	s.nextCID++
	c := &Component{ID: s.nextCID, Fields: fields, pos: make(map[FieldID]int, len(fields))}
	for i, f := range fields {
		c.pos[f] = i
		s.fieldComp[f] = c.ID
	}
	s.comps[c.ID] = c
	return c
}

// mergeComps composes the distinct components of the given fields into one
// and returns it. Fails if the merged component would exceed MaxCompFields.
func (s *Store) mergeComps(fields ...FieldID) (*Component, error) {
	seen := make(map[int32]bool)
	var cs []*Component
	for _, f := range fields {
		cid, ok := s.fieldComp[f]
		if !ok {
			return nil, fmt.Errorf("engine: field %v has no component", f)
		}
		if !seen[cid] {
			seen[cid] = true
			cs = append(cs, s.comps[cid])
		}
	}
	if len(cs) == 1 {
		return cs[0], nil
	}
	total := 0
	for _, c := range cs {
		total += len(c.Fields)
	}
	if total > MaxCompFields {
		return nil, fmt.Errorf("engine: composing %d fields exceeds limit %d", total, MaxCompFields)
	}
	merged := cs[0]
	for _, c := range cs[1:] {
		if len(merged.Rows)*len(c.Rows) > MaxCompRows {
			return nil, fmt.Errorf("engine: composing components would exceed %d local worlds (the exponential join blow-up of Section 4); rewrite the query or lower the density", MaxCompRows)
		}
		merged = composeComponents(merged, c)
		compressComponent(merged)
	}
	s.nextCID++
	merged.ID = s.nextCID
	s.comps[merged.ID] = merged
	for _, c := range cs {
		delete(s.comps, c.ID)
	}
	for _, f := range merged.Fields {
		s.fieldComp[f] = merged.ID
	}
	return merged, nil
}

// composeComponents builds the product component of a and b (Figure 20's
// composition): one local world per pair, probabilities multiplied.
//
//maybms:unguarded update-path composition under the store lock, fail-fast bounded by MaxCompRows
func composeComponents(a, b *Component) *Component {
	fields := append(append([]FieldID(nil), a.Fields...), b.Fields...)
	m := &Component{Fields: fields, pos: make(map[FieldID]int, len(fields))}
	for i, f := range fields {
		m.pos[f] = i
	}
	m.Rows = make([]CompRow, 0, len(a.Rows)*len(b.Rows))
	shift := len(a.Fields)
	for _, ra := range a.Rows {
		for _, rb := range b.Rows {
			vals := make([]int32, 0, len(ra.Vals)+len(rb.Vals))
			vals = append(vals, ra.Vals...)
			vals = append(vals, rb.Vals...)
			absent := ra.Absent.Clone()
			absent = absent.OrShifted(rb.Absent, len(b.Fields), shift)
			m.Rows = append(m.Rows, CompRow{
				Vals:   vals,
				Absent: absent,
				P:      ra.P * rb.P,
			})
		}
	}
	return m
}

// MaxCompRows bounds the number of local worlds a composition may produce.
// Compositions beyond it indicate the inherent exponential blow-up of joins
// on WSDs (Section 4); failing fast beats exhausting memory.
const MaxCompRows = 1 << 21

// compressComponent merges local worlds with identical values and absence
// marks, summing their probabilities (the compress normalization of
// Figure 20). Composition products shrink dramatically: fields restricted
// by earlier selections contribute their distinct surviving states rather
// than their original local-world count.
//
//maybms:unguarded update-path normalization of a composition product, bounded by MaxCompRows
func compressComponent(c *Component) {
	if len(c.Rows) < 2 {
		return
	}
	type key string
	seen := make(map[key]int, len(c.Rows))
	buf := make([]byte, 0, 8*len(c.Fields)+8)
	out := c.Rows[:0]
	for _, row := range c.Rows {
		buf = buf[:0]
		for i, v := range row.Vals {
			buf = appendFieldKey(buf, v, row.Absent.Get(i))
		}
		k := key(buf)
		if j, ok := seen[k]; ok {
			out[j].P += row.P
			continue
		}
		seen[k] = len(out)
		out = append(out, row)
	}
	c.Rows = out
}

// appendFieldKey appends the canonical 4-byte encoding of one field state —
// the value, or a -2 absent marker distinct from every real value (≥ 0) and
// from Placeholder — used to merge indistinguishable local worlds.
// compressComponent and the scoped WSD bridge (ToWSDOf) share it.
func appendFieldKey(buf []byte, v int32, absent bool) []byte {
	if absent {
		v = -2
	}
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// addField appends a new field column to component c with the given values
// and absence bits (one entry per component row).
//
//maybms:unguarded update-path mutation under the store lock; queries run on snapshots and arenas
func (s *Store) addField(c *Component, f FieldID, vals []int32, absent []bool) error {
	if len(c.Fields) >= MaxCompFields {
		return fmt.Errorf("engine: component %d is full", c.ID)
	}
	if len(vals) != len(c.Rows) || len(absent) != len(c.Rows) {
		return fmt.Errorf("engine: addField: %d values for %d rows", len(vals), len(c.Rows))
	}
	col := len(c.Fields)
	c.Fields = append(c.Fields, f)
	c.pos[f] = col
	for i := range c.Rows {
		c.Rows[i].Vals = append(c.Rows[i].Vals, vals[i])
		if absent[i] {
			c.Rows[i].Absent = c.Rows[i].Absent.Set(col)
		}
	}
	s.fieldComp[f] = c.ID
	return nil
}

// Clone deep-copies the store: templates, components and indexes. Used by
// benchmarks to re-run destructive operations (chase) from one prepared
// state, and generally to branch a world-set.
//
//maybms:unguarded deep copy on the update path (test fixtures, import); no query guard exists
func (s *Store) Clone() *Store {
	c := &Store{
		rels:       make([]*Relation, len(s.rels)),
		relID:      make(map[string]int32, len(s.relID)),
		comps:      make(map[int32]*Component, len(s.comps)),
		nextCID:    s.nextCID,
		fieldComp:  make(map[FieldID]int32, len(s.fieldComp)),
		scratchSeq: s.scratchSeq,
	}
	for name, id := range s.relID {
		c.relID[name] = id
	}
	for i, r := range s.rels {
		if r == nil {
			continue
		}
		nr := &Relation{
			id:        r.id,
			Name:      r.Name,
			Attrs:     append([]string(nil), r.Attrs...),
			Cols:      make([][]int32, len(r.Cols)),
			uncertain: make(map[int32][]uint16, len(r.uncertain)),
		}
		for j, col := range r.Cols {
			nr.Cols[j] = append([]int32(nil), col...)
		}
		for row, attrs := range r.uncertain {
			nr.uncertain[row] = append([]uint16(nil), attrs...)
		}
		c.rels[i] = nr
	}
	for cid, comp := range s.comps {
		nc := &Component{
			ID:     comp.ID,
			Fields: append([]FieldID(nil), comp.Fields...),
			Rows:   make([]CompRow, len(comp.Rows)),
			pos:    make(map[FieldID]int, len(comp.pos)),
		}
		for f, i := range comp.pos {
			nc.pos[f] = i
		}
		for i, row := range comp.Rows {
			nc.Rows[i] = CompRow{
				Vals:   append([]int32(nil), row.Vals...),
				Absent: row.Absent.Clone(),
				P:      row.P,
			}
		}
		c.comps[cid] = nc
	}
	for f, cid := range s.fieldComp {
		c.fieldComp[f] = cid
	}
	return c
}

// DropRelation removes a relation and projects its fields away from the
// component store (components left with no fields are deleted). Affected
// components are replaced by trimmed copies rather than edited in place, so
// live snapshots keep their frozen view.
func (s *Store) DropRelation(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.detachLocked()
	id, ok := s.relID[name]
	if !ok {
		return
	}
	r := s.rels[id]
	cloned := make(map[int32]bool)
	for row, attrs := range r.uncertain {
		for _, a := range attrs {
			f := FieldID{Rel: id, Row: row, Attr: a}
			cid, ok := s.fieldComp[f]
			if !ok {
				continue
			}
			delete(s.fieldComp, f)
			c := s.comps[cid]
			if !cloned[cid] {
				cloned[cid] = true
				c = cloneComponent(c)
				s.comps[cid] = c
			}
			dropFieldFromComp(c, f)
			if len(c.Fields) == 0 {
				delete(s.comps, cid)
			}
		}
	}
	s.rels[id] = nil
	delete(s.relID, name)
}

//maybms:unguarded DDL-path column removal under the store lock
func dropFieldFromComp(c *Component, f FieldID) {
	i, ok := c.pos[f]
	if !ok {
		return
	}
	last := len(c.Fields) - 1
	// Swap-remove the column, fixing the bitmaps.
	c.Fields[i] = c.Fields[last]
	c.Fields = c.Fields[:last]
	delete(c.pos, f)
	if i != last {
		c.pos[c.Fields[i]] = i
	}
	for r := range c.Rows {
		row := &c.Rows[r]
		lastBit := row.Absent.Get(last)
		row.Vals[i] = row.Vals[last]
		row.Vals = row.Vals[:last]
		// Move the last column's bit into position i.
		row.Absent = row.Absent.Assign(i, lastBit)
		row.Absent.Clear(last)
	}
}

// renormalize rescales a component's probabilities to sum to 1; it returns
// false if the total mass is zero.
//
//maybms:unguarded update-path rescale, one bounded pass over a component
func renormalize(c *Component) bool {
	total := c.TotalP()
	if total <= 0 || math.IsNaN(total) {
		return false
	}
	for i := range c.Rows {
		c.Rows[i].P /= total
	}
	return true
}

package engine

// Result memory accounting. A session's result lives in its arena — the
// materialized template relations plus the adopted/composed components —
// and the serving layer budgets that memory per session and globally
// (internal/server). MemUsage is an estimate of the retained bytes, not a
// malloc-accurate count: it charges the backing arrays (columns, component
// value rows, bitsets) and a flat per-entry overhead for the maps, which is
// where essentially all of a large result's memory sits. The estimate is
// deliberately cheap (one pass over headers, no allocation) so admission
// control can run it on every request.

// mapEntryOverhead approximates the per-entry cost of the arena's bookkeeping
// maps (bucket slot, key and value words).
const mapEntryOverhead = 48

// MemUsage returns the approximate retained bytes of the arena's session
// state: result relations, adopted and composed components, and the
// field-index overlays. Snapshot data shared with the store is not charged —
// it exists once regardless of how many sessions read it.
//
//maybms:unguarded runs inside Guard.Check's own memory hook; ticking here would recurse
func (a *Arena) MemUsage() int64 {
	if a == nil {
		return 0
	}
	var n int64
	for _, r := range a.rels {
		if r == nil {
			continue
		}
		for _, c := range r.Cols {
			n += int64(cap(c)) * 4
		}
		n += int64(len(r.uncertain)) * mapEntryOverhead
		for _, attrs := range r.uncertain {
			n += int64(cap(attrs)) * 2
		}
	}
	for _, c := range a.comps {
		if c == nil {
			continue
		}
		n += int64(cap(c.Fields)) * 12 // FieldID: rel, row int32 + attr uint16, padded
		for _, row := range c.Rows {
			n += int64(cap(row.Vals))*4 + int64(len(row.Absent))*8 + 16
		}
		n += int64(len(c.pos)) * mapEntryOverhead
	}
	n += int64(len(a.fieldComp)+len(a.relID)+len(a.origins)+len(a.shadowed)+len(a.dirty)) * mapEntryOverhead
	return n
}

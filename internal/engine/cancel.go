package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// Cooperative cancellation. Confidence computation is exponential in the
// worst case (Section 6), so a query must be stoppable from outside: the
// serving layer derives a context per request and the engine honors it at
// checkpoints inside every operator and fold loop. The checkpoints are
// counter-amortized — one atomic increment per unit of work, a real
// context/budget check every guardPeriod units — so the uncancelled fast
// path pays an atomic add per row, not a channel read.
//
// The Guard also carries the mid-flight memory hook: at every real check it
// probes the arena's retained bytes and reports growth to the serving
// layer's ledger, so a result that will blow the budget is stopped while it
// is being built, not after.

// ErrCanceled marks an execution stopped at a guard checkpoint because its
// context was done. The returned error chains the context's own error too,
// so errors.Is sees both ErrCanceled and context.Canceled or
// context.DeadlineExceeded.
var ErrCanceled = errors.New("engine: query canceled")

// guardPeriod is the tick count between real checks: large enough that the
// per-row cost is one atomic add, small enough that a cancelled query stops
// within microseconds of work.
const guardPeriod = 1024

// Guard is the cancellation and resource checkpoint of one query execution.
// It is attached to the arenas (and shared by the fold workers) of that
// execution; a nil *Guard is valid everywhere and means "never canceled" —
// the Store's deprecated one-shot path and plain library use pay nothing.
//
// A Guard is safe for concurrent use: sharded and fold-parallel execution
// tick one guard from many goroutines.
type Guard struct {
	ctx context.Context
	n   atomic.Uint64
	// memMu serializes the memory probe (probe, lastMem, onGrow).
	memMu   sync.Mutex
	probe   func() int64
	onGrow  func(delta int64) error
	lastMem int64
	// failed latches the first checkpoint error so every later Tick fails
	// fast — parallel workers all stop on the first failure.
	failed atomic.Pointer[error]
}

// NewGuard returns a guard checking ctx at checkpoint cadence. A nil ctx
// never cancels (memory hooks may still be attached).
func NewGuard(ctx context.Context) *Guard {
	return &Guard{ctx: ctx}
}

// SetMemHook attaches the mid-flight memory hook: probe reads the current
// retained bytes (typically Arena.MemUsage) and onGrow is called with the
// positive growth since the previous check. An onGrow error aborts the
// execution at the next checkpoint. Each arena of a sharded execution gets
// its own guard instance so per-arena growth deltas stay monotone; the
// onGrow callbacks may share state (the serving layer's ledger) and must be
// goroutine-safe then.
func (g *Guard) SetMemHook(probe func() int64, onGrow func(delta int64) error) {
	g.probe = probe
	g.onGrow = onGrow
	g.lastMem = 0
}

// Tick is the amortized checkpoint: cheap on every call, a real Check every
// guardPeriod calls. Operators call it once per row (or per local-world
// epoch); a non-nil error must abort the operator.
func (g *Guard) Tick() error {
	if g == nil {
		return nil
	}
	if g.n.Add(1)%guardPeriod != 0 {
		return nil
	}
	return g.Check()
}

// Check runs a real checkpoint now: context first, then the memory hook.
// Executors also call it once around plan phases so even a query too small
// to reach a single amortized checkpoint notices a cancel.
func (g *Guard) Check() error {
	if g == nil {
		return nil
	}
	if p := g.failed.Load(); p != nil {
		return *p
	}
	if g.ctx != nil {
		if cause := g.ctx.Err(); cause != nil {
			var err error = &cancelError{cause: cause}
			g.failed.Store(&err)
			return err
		}
	}
	if g.onGrow == nil {
		return nil
	}
	g.memMu.Lock()
	used := g.probe()
	delta := used - g.lastMem
	var err error
	if delta > 0 {
		err = g.onGrow(delta)
		if err == nil {
			g.lastMem = used
		}
	}
	g.memMu.Unlock()
	if err != nil {
		g.failed.Store(&err)
	}
	return err
}

// Canceled wraps a context error into the engine's cancellation chain:
// errors.Is sees both ErrCanceled and cause. Layers that notice a done
// context outside a guard (the shard scheduler, executors) wrap through here
// so cancellation reads uniformly no matter which checkpoint caught it. A nil
// cause returns nil.
func Canceled(cause error) error {
	if cause == nil {
		return nil
	}
	return &cancelError{cause: cause}
}

// cancelError chains both ErrCanceled and the originating context error, so
// callers can branch on either (the serving layer maps context.Canceled to
// the CANCELED wire code and context.DeadlineExceeded to TIMEOUT).
type cancelError struct{ cause error }

func (e *cancelError) Error() string { return ErrCanceled.Error() + ": " + e.cause.Error() }

func (e *cancelError) Is(target error) bool { return target == ErrCanceled }

func (e *cancelError) Unwrap() error { return e.cause }

// SetGuard attaches a guard to the arena: every operator and fold running on
// this arena checkpoints through it. When the guard carries a memory hook
// but no probe yet, the arena wires its own MemUsage. Reset clears the
// attachment.
func (a *Arena) SetGuard(g *Guard) {
	a.guard = g
	if g != nil && g.probe == nil && g.onGrow != nil {
		g.probe = a.MemUsage
	}
}

// tick is the operators' checkpoint; a nil guard (the plain library path)
// costs one predictable branch.
func (a *Arena) tick() error { return a.guard.Tick() }

// execGuard exposes the arena's guard to the catView-generic confidence
// code; Snapshot and Store carry none (reads of committed state run
// unguarded).
func (a *Arena) execGuard() *Guard { return a.guard }

// guardOf resolves the guard of a catView: arenas carry one, snapshots and
// stores do not.
func guardOf(v catView) *Guard {
	if g, ok := v.(interface{ execGuard() *Guard }); ok {
		return g.execGuard()
	}
	return nil
}

package engine

import (
	"fmt"
	"sort"
)

// This file computes the across-world operators of Section 6 — the
// confidence of a tuple (Figure 17), the possible tuples of a relation
// (Figure 18) and both combined (Figure 19) — natively on the columnar
// representation. The WSD bridge (rep.go) plus internal/confidence remain as
// the reference oracle these implementations are differential-tested
// against; the query path goes through here and never materializes a
// core.WSD.
//
// The cost model is the point: building the tuple-level view touches only
// the components reachable from the relation's own placeholders
// (tuplelevel.go), and the sweep below scores all tuples in one pass with
// slice-indexed accumulators, so CONF() over a query result is priced by the
// result — not by the base relations the query never touched, and not by a
// per-tuple rescan.

// TupleConf pairs a possible tuple — in the engine's native int32 encoding —
// with its confidence.
type TupleConf struct {
	Tuple []int32
	Conf  float64
}

// TupleMasses is the pre-fold form of one confidence-table entry: the tuple,
// whether some certain template row produces it (confidence exactly 1), and
// the probability mass it collects from each independent group that can
// produce it. The final confidence is FoldMasses over Masses — kept separate
// so per-shard mass lists can be merged before folding (shards partition the
// groups, so the union of the shards' mass lists is exactly the unsharded
// list as a multiset).
type TupleMasses struct {
	Tuple   []int32
	Certain bool
	Masses  []float64
}

// FoldMasses combines the per-group masses of one tuple into its confidence:
// matches in distinct groups are independent events, so
// conf = 1 - Π(1 - mass). The masses are folded in ascending value order —
// floating-point combination is order-sensitive, and the canonical order
// makes the result a function of the mass multiset alone. That is what keeps
// sharded confidence byte-identical to unsharded: both paths fold the same
// multiset.
func FoldMasses(ms []float64) float64 {
	switch len(ms) {
	case 0:
		return 0
	case 1:
		return ms[0]
	}
	sorted := append(make([]float64, 0, len(ms)), ms...)
	sort.Float64s(sorted)
	c := sorted[0]
	for _, m := range sorted[1:] {
		c = 1 - (1-c)*(1-m)
	}
	return c
}

// AppendTupleKey appends the canonical byte key of a native tuple to dst and
// returns the extended slice. Equal tuples map to equal keys; the shard merge
// layer uses it to intern tuples across per-shard confidence tables.
func AppendTupleKey(dst []byte, t []int32) []byte {
	for _, v := range t {
		dst = appendFieldKey(dst, v, false)
	}
	return dst
}

// CompareTuples orders two native tuples lexicographically; it matches the
// canonical order of relation.CompareTuples on all-integer tuples, so native
// and bridge answer lists sort identically.
func CompareTuples(a, b []int32) int {
	for i := range a {
		if i >= len(b) {
			return 1
		}
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	if len(a) < len(b) {
		return -1
	}
	return 0
}

// tupleAccum interns tuples and accumulates per-tuple probability masses
// with slice indexes: the byte key (appendFieldKey per attribute) resolves a
// tuple to a dense index once, and the per-group sweep then works entirely
// in slices — mass, a last-counted stamp, a touched list — instead of
// map[string]float64 per component.
type tupleAccum struct {
	idx     map[string]int
	tuples  [][]int32
	certain []bool
	masses  [][]float64
	mass    []float64
	stamp   []int // last (group, local world) epoch that counted the tuple
	touched []int
	keyBuf  []byte
}

func newTupleAccum() *tupleAccum {
	return &tupleAccum{idx: make(map[string]int)}
}

// intern returns the dense index of tuple t, adding it on first sight. The
// returned index is stable; t is copied only when new.
func (ac *tupleAccum) intern(t []int32) int {
	ac.keyBuf = AppendTupleKey(ac.keyBuf[:0], t)
	if i, ok := ac.idx[string(ac.keyBuf)]; ok {
		return i
	}
	i := len(ac.tuples)
	ac.idx[string(ac.keyBuf)] = i
	ac.tuples = append(ac.tuples, append([]int32(nil), t...))
	ac.certain = append(ac.certain, false)
	ac.masses = append(ac.masses, nil)
	ac.mass = append(ac.mass, 0)
	ac.stamp = append(ac.stamp, -1)
	return i
}

// add counts mass p for tuple index i at epoch e, at most once per epoch
// (a local world listing a tuple in several slots counts it once).
func (ac *tupleAccum) add(i, e int, p float64) {
	if ac.stamp[i] == e {
		return
	}
	ac.stamp[i] = e
	if ac.mass[i] == 0 {
		ac.touched = append(ac.touched, i)
	}
	ac.mass[i] += p
}

// fold closes the current group: every touched tuple's accumulated group
// mass is appended to its mass list (one entry per producing group) and the
// running masses reset for the next group. The confidence itself is computed
// later by FoldMasses, in canonical order.
func (ac *tupleAccum) fold() {
	for _, i := range ac.touched {
		ac.masses[i] = append(ac.masses[i], ac.mass[i])
		ac.mass[i] = 0
	}
	ac.touched = ac.touched[:0]
}

// sorted returns the interned tuples with their mass lists in canonical
// order.
func (ac *tupleAccum) sorted() []TupleMasses {
	out := make([]TupleMasses, len(ac.tuples))
	for i := range ac.tuples {
		out[i] = TupleMasses{Tuple: ac.tuples[i], Certain: ac.certain[i], Masses: ac.masses[i]}
	}
	sort.Slice(out, func(i, j int) bool { return CompareTuples(out[i].Tuple, out[j].Tuple) < 0 })
	return out
}

// foldAll turns sorted mass lists into the final confidence table. It
// ticks g per tuple — each fold sorts and multiplies a mass list, and the
// table can be as large as the result — so a canceled query dies inside
// the fold, not after it. A nil guard ticks for free.
func foldAll(g *Guard, tms []TupleMasses) ([]TupleConf, error) {
	out := make([]TupleConf, len(tms))
	for i, tm := range tms {
		if err := g.Tick(); err != nil {
			return nil, err
		}
		c := 1.0
		if !tm.Certain {
			c = FoldMasses(tm.Masses)
		}
		out[i] = TupleConf{Tuple: tm.Tuple, Conf: c}
	}
	return out, nil
}

// groupTuple materializes the tuple of row tr at local world w of its
// group's component into buf; ok is false when the tuple is absent there
// (some field has no value — the encoding of worlds of different sizes).
func groupTuple(r *Relation, g *tlGroup, tr tlRow, w int, buf []int32) (_ []int32, ok bool) {
	crow := &g.comp.Rows[w]
	buf = buf[:0]
	for a, col := range tr.cols {
		if col < 0 {
			buf = append(buf, r.Cols[a][tr.row])
			continue
		}
		if crow.IsAbsent(col) {
			return buf, false
		}
		buf = append(buf, crow.Vals[col])
	}
	return buf, true
}

// internCertain interns the certain template rows of the view: present in
// every world, confidence exactly 1, whatever the uncertain rows add.
func (ac *tupleAccum) internCertain(r *Relation, rows []int32) {
	tbuf := make([]int32, 0, len(r.Attrs))
	for _, row := range rows {
		tbuf = tbuf[:0]
		for a := range r.Attrs {
			tbuf = append(tbuf, r.Cols[a][row])
		}
		ac.certain[ac.intern(tbuf)] = true
	}
}

// sweepGroups scores every tuple each group can produce: one epoch per
// (group, local world), fold at each group boundary. Each group must be swept
// whole — the per-group mass is a sum in local-world order — but distinct
// groups are independent, so disjoint group subsets can be swept by separate
// accumulators and merged (mergeMasses). The guard is ticked once per
// (group, local world) epoch — the sweep is the exponential part of
// confidence computation, so this is where a cancel must land.
func (ac *tupleAccum) sweepGroups(r *Relation, groups []*tlGroup, guard *Guard) error {
	tbuf := make([]int32, 0, len(r.Attrs))
	epoch := 0
	for _, g := range groups {
		for w := range g.comp.Rows {
			if err := guard.Tick(); err != nil {
				return err
			}
			p := g.comp.Rows[w].P
			for _, tr := range g.rows {
				t, ok := groupTuple(r, g, tr, w, tbuf)
				tbuf = t[:0]
				if !ok {
					continue
				}
				ac.add(ac.intern(t), epoch, p)
			}
			epoch++
		}
		ac.fold()
	}
	return nil
}

// possibleMassesOf computes the pre-fold confidence table of rel natively:
// the tuple-level view is built once and every tuple's per-group masses are
// collected in a single sweep over it, in canonical tuple order.
func possibleMassesOf(v catView, rel string) ([]TupleMasses, error) {
	tv, err := tupleLevelView(v, rel)
	if err != nil {
		return nil, err
	}
	ac := newTupleAccum()
	ac.internCertain(tv.rel, tv.certain)
	if err := ac.sweepGroups(tv.rel, tv.groups, guardOf(v)); err != nil {
		return nil, err
	}
	return ac.sorted(), nil
}

// possiblePOf computes the Figure 19 confidence table of rel natively.
func possiblePOf(v catView, rel string) ([]TupleConf, error) {
	tms, err := possibleMassesOf(v, rel)
	if err != nil {
		return nil, err
	}
	return foldAll(guardOf(v), tms)
}

// confOf computes the Figure 17 confidence of one tuple of rel natively.
func confOf(v catView, rel string, t []int32) (float64, error) {
	tv, err := tupleLevelView(v, rel)
	if err != nil {
		return 0, err
	}
	r := tv.rel
	if len(t) != len(r.Attrs) {
		return 0, fmt.Errorf("engine: tuple arity %d, want %d", len(t), len(r.Attrs))
	}
	for _, x := range t {
		if x < 0 {
			return 0, fmt.Errorf("engine: negative value %d in tuple", x)
		}
	}
	for _, row := range tv.certain {
		match := true
		for a := range r.Attrs {
			if r.Cols[a][row] != t[a] {
				match = false
				break
			}
		}
		if match {
			return 1, nil
		}
	}
	guard := guardOf(v)
	var masses []float64
	buf := make([]int32, 0, len(t))
	for _, g := range tv.groups {
		mass := 0.0
		for w := range g.comp.Rows {
			if err := guard.Tick(); err != nil {
				return 0, err
			}
			for _, tr := range g.rows {
				tup, ok := groupTuple(r, g, tr, w, buf)
				buf = tup[:0]
				if ok && CompareTuples(tup, t) == 0 {
					mass += g.comp.Rows[w].P
					break
				}
			}
		}
		if mass != 0 {
			masses = append(masses, mass)
		}
	}
	return FoldMasses(masses), nil
}

// possibleOf computes the Figure 18 possible tuples of rel natively, in
// canonical order.
//
//maybms:unguarded linear copy of the already-folded table; possiblePOf ticks per tuple
func possibleOf(v catView, rel string) ([][]int32, error) {
	tcs, err := possiblePOf(v, rel)
	if err != nil {
		return nil, err
	}
	out := make([][]int32, len(tcs))
	for i, tc := range tcs {
		out[i] = tc.Tuple
	}
	return out, nil
}

// certainOf reports whether tuple t occurs in every world of rel: its
// confidence is 1 within eps. Engine components always carry probabilities,
// so — unlike the generic confidence package — there is no separate
// non-probabilistic path.
func certainOf(v catView, rel string, t []int32, eps float64) (bool, error) {
	c, err := confOf(v, rel, t)
	if err != nil {
		return false, err
	}
	return c >= 1-eps, nil
}

// Conf computes the confidence of tuple t in relation rel (Figure 17)
// natively on the arena's view: the sum of the probabilities of the worlds
// whose rel contains t.
func (a *Arena) Conf(rel string, t []int32) (float64, error) { return confOf(a, rel, t) }

// PossibleP computes the possible tuples of rel with their confidences
// (Figure 19) natively on the arena's view, sorted canonically. This is the
// CONF() execution path: the arena's result relations and the components
// they extend are read in place, with no WSD materialization.
func (a *Arena) PossibleP(rel string) ([]TupleConf, error) { return possiblePOf(a, rel) }

// PossibleMasses computes the pre-fold confidence table of rel on the
// arena's view: per-tuple group masses, not yet folded. The shard layer
// merges these across sub-stores before FoldMasses.
func (a *Arena) PossibleMasses(rel string) ([]TupleMasses, error) { return possibleMassesOf(a, rel) }

// Possible computes the tuples of rel appearing in at least one world
// (Figure 18) natively on the arena's view, sorted canonically.
func (a *Arena) Possible(rel string) ([][]int32, error) { return possibleOf(a, rel) }

// Certain reports whether tuple t occurs in every world of rel — confidence
// 1 within eps — natively on the arena's view.
func (a *Arena) Certain(rel string, t []int32, eps float64) (bool, error) {
	return certainOf(a, rel, t, eps)
}

// Conf computes the confidence of tuple t in relation rel natively on the
// snapshot.
func (sn *Snapshot) Conf(rel string, t []int32) (float64, error) { return confOf(sn, rel, t) }

// PossibleP computes the confidence table of rel natively on the snapshot.
func (sn *Snapshot) PossibleP(rel string) ([]TupleConf, error) { return possiblePOf(sn, rel) }

// PossibleMasses computes the pre-fold confidence table of rel natively on
// the snapshot.
func (sn *Snapshot) PossibleMasses(rel string) ([]TupleMasses, error) {
	return possibleMassesOf(sn, rel)
}

// Possible computes the possible tuples of rel natively on the snapshot.
func (sn *Snapshot) Possible(rel string) ([][]int32, error) { return possibleOf(sn, rel) }

// Certain reports whether tuple t occurs in every world of rel natively on
// the snapshot.
func (sn *Snapshot) Certain(rel string, t []int32, eps float64) (bool, error) {
	return certainOf(sn, rel, t, eps)
}

// Conf computes the confidence of tuple t in relation rel natively on the
// live store; concurrent readers should go through Snapshot.
func (s *Store) Conf(rel string, t []int32) (float64, error) { return confOf(s, rel, t) }

// PossibleP computes the confidence table of rel natively on the live store.
func (s *Store) PossibleP(rel string) ([]TupleConf, error) { return possiblePOf(s, rel) }

// Possible computes the possible tuples of rel natively on the live store.
func (s *Store) Possible(rel string) ([][]int32, error) { return possibleOf(s, rel) }

// Certain reports whether tuple t occurs in every world of rel natively on
// the live store.
func (s *Store) Certain(rel string, t []int32, eps float64) (bool, error) {
	return certainOf(s, rel, t, eps)
}

package engine

import (
	"fmt"
	"sort"
)

// This file builds the tuple-level view of one relation directly on the
// columnar representation: the native analogue of what the WSD bridge plus
// confidence.tupleLevel used to materialize as a core.WSD. All fields of a
// template row end up defined within a single component, so across-world
// operators (conf.go) can score whole tuples per local world. The view is
// computed on private copies of the reachable components — the snapshot,
// arena and store are never modified — and its size depends only on the
// relation's own placeholders: fields of other relations sharing a component
// are marginalized away, not converted.

// tlGroup is one independent factor of the tuple-level view: a composed,
// marginalized component together with the template rows whose uncertain
// fields it defines. Distinct groups are stochastically independent.
type tlGroup struct {
	comp *Component
	rows []tlRow
}

// tlRow maps one template row of the viewed relation into its group's
// component: cols[a] is the component column holding attribute a, or -1 when
// the attribute is certain in the template.
type tlRow struct {
	row  int32
	cols []int
}

// tupleView is the tuple-level normalization of one relation: its certain
// rows read straight off the template, its uncertain rows grouped by the
// composed components defining them.
type tupleView struct {
	rel *Relation
	// certain lists the template rows without placeholders (present in
	// every world).
	certain []int32
	groups  []*tlGroup
}

// tupleLevelView builds the tuple-level view of rel as seen through v. It
// fails on unknown relations and when composing components would exceed the
// MaxCompRows blow-up guard (the NP-hardness of Section 6 surfacing as an
// error, exactly as on the store's own compositions).
func tupleLevelView(v catView, rel string) (*tupleView, error) {
	r := v.Rel(rel)
	if r == nil {
		return nil, fmt.Errorf("engine: unknown relation %q", rel)
	}
	tv := &tupleView{rel: r}
	n := r.NumRows()
	for i := 0; i < n; i++ {
		if len(r.uncertain[int32(i)]) == 0 {
			tv.certain = append(tv.certain, int32(i))
		}
	}
	if len(r.uncertain) == 0 {
		return tv, nil
	}

	// Restrict every reachable component to the fields of rel, marginalizing
	// the rest: local worlds indistinguishable on the kept fields merge,
	// summing their probabilities. Components are keyed by pointer — the
	// arena overlay already resolves adopted copies — and the restricted
	// copies are private to the view.
	guard := guardOf(v)
	restricted := make(map[*Component]*Component)
	rowsOf := make(map[*Component][]int32)
	for row, attrs := range r.uncertain {
		if err := guard.Tick(); err != nil {
			return nil, err
		}
		for _, a := range attrs {
			f := FieldID{Rel: r.id, Row: row, Attr: a}
			c := v.compOf(f)
			if c == nil {
				return nil, fmt.Errorf("engine: field %v has no component", f)
			}
			if _, ok := restricted[c]; !ok {
				rc, err := restrictToRel(guard, c, r.id)
				if err != nil {
					return nil, err
				}
				restricted[c] = rc
			}
		}
	}
	for c, rc := range restricted {
		seen := make(map[int32]bool)
		for _, f := range rc.Fields {
			if !seen[f.Row] {
				seen[f.Row] = true
				rowsOf[c] = append(rowsOf[c], f.Row)
			}
		}
	}

	// Union-find over template rows: rows sharing a component belong to one
	// group, and transitively so through chains of shared components.
	parent := make(map[int32]int32, len(r.uncertain))
	var find func(x int32) int32
	find = func(x int32) int32 {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(x, y int32) { parent[find(x)] = find(y) }
	for _, rows := range rowsOf {
		for _, row := range rows[1:] {
			union(rows[0], row)
		}
	}

	// Compose each group's restricted components into one. Iterate rows in
	// template order so group order — and therefore the floating-point
	// combination order downstream — is deterministic.
	compsOf := make(map[int32][]*Component)
	for c, rows := range rowsOf {
		compsOf[find(rows[0])] = append(compsOf[find(rows[0])], restricted[c])
	}
	groupOf := make(map[int32]*tlGroup)
	for i := 0; i < n; i++ {
		if err := guard.Tick(); err != nil {
			return nil, err
		}
		row := int32(i)
		uattrs := r.uncertain[row]
		if len(uattrs) == 0 {
			continue
		}
		root := find(row)
		g := groupOf[root]
		if g == nil {
			cs := compsOf[root]
			// Deterministic composition order: sort by first field.
			sort.Slice(cs, func(i, j int) bool { return lessFieldID(cs[i].Fields[0], cs[j].Fields[0]) })
			merged := cs[0]
			for _, c := range cs[1:] {
				if len(merged.Rows)*len(c.Rows) > MaxCompRows {
					return nil, fmt.Errorf("engine: tuple-level normalization of %q would exceed %d local worlds (the exponential blow-up of Section 6); compute confidence on a smaller result", rel, MaxCompRows)
				}
				merged = composeComponents(merged, c)
				compressComponent(merged)
			}
			g = &tlGroup{comp: merged}
			groupOf[root] = g
			tv.groups = append(tv.groups, g)
		}
		cols := make([]int, len(r.Attrs))
		for a := range cols {
			cols[a] = -1
		}
		for _, a := range uattrs {
			f := FieldID{Rel: r.id, Row: row, Attr: a}
			col := g.comp.Pos(f)
			if col < 0 {
				return nil, fmt.Errorf("engine: field %v missing from its composed component", f)
			}
			cols[a] = col
		}
		g.rows = append(g.rows, tlRow{row: row, cols: cols})
	}
	return tv, nil
}

// restrictToRel copies component c keeping only the fields of relation rel,
// merging local worlds that become indistinguishable and summing their
// probabilities — the engine-native marginalization the WSD bridge used to
// perform through relation.Value maps. It ticks g per local world: the
// component may hold up to MaxCompRows of them (nil guard ticks for free).
func restrictToRel(g *Guard, c *Component, rel int32) (*Component, error) {
	var keep []int
	for i, f := range c.Fields {
		if f.Rel == rel {
			keep = append(keep, i)
		}
	}
	rc := &Component{ID: c.ID, Fields: make([]FieldID, len(keep)), pos: make(map[FieldID]int, len(keep))}
	for i, col := range keep {
		rc.Fields[i] = c.Fields[col]
		rc.pos[c.Fields[col]] = i
	}
	seen := make(map[string]int, len(c.Rows))
	key := make([]byte, 0, 4*len(keep))
	for _, row := range c.Rows {
		if err := g.Tick(); err != nil {
			return nil, err
		}
		key = key[:0]
		for _, col := range keep {
			key = appendFieldKey(key, row.Vals[col], row.IsAbsent(col))
		}
		if j, ok := seen[string(key)]; ok {
			rc.Rows[j].P += row.P
			continue
		}
		vals := make([]int32, len(keep))
		var absent Bitset
		for i, col := range keep {
			vals[i] = row.Vals[col]
			if row.IsAbsent(col) {
				absent = absent.Set(i)
			}
		}
		seen[string(key)] = len(rc.Rows)
		rc.Rows = append(rc.Rows, CompRow{Vals: vals, Absent: absent, P: row.P})
	}
	return rc, nil
}

// lessFieldID orders fields (relation, row, attribute)-lexicographically; it
// keys the composition order of a group's components, keeping the
// tuple-level view independent of map iteration.
func lessFieldID(a, b FieldID) bool {
	if a.Rel != b.Rel {
		return a.Rel < b.Rel
	}
	if a.Row != b.Row {
		return a.Row < b.Row
	}
	return a.Attr < b.Attr
}

package engine

// The deprecated one-shot operator surface: each Store method takes a
// snapshot, runs the Arena operator of the same name, and commits the
// result back into the store — reproducing the pre-snapshot behavior
// (results and composed components land in the shared catalog) at the cost
// of one copy-on-write detach per call. Single-query tools and tests keep
// working unchanged; anything long-lived or concurrent should hold a
// Snapshot and run operators on a per-session Arena instead.

func (s *Store) oneShot(res string, op func(*Arena) error) (*Relation, error) {
	a := NewArena(s.Snapshot())
	if err := op(a); err != nil {
		return nil, err
	}
	if err := a.Commit(); err != nil {
		return nil, err
	}
	return s.Rel(res), nil
}

// Select computes res := σ_p(src) and installs it in the store.
//
// Deprecated: use Snapshot/NewArena and Arena.Select; the one-shot wrapper
// pays a snapshot detach per call and serializes with every writer.
func (s *Store) Select(res, src string, p Pred) (*Relation, error) {
	return s.oneShot(res, func(a *Arena) error { _, err := a.Select(res, src, p); return err })
}

// Project computes res := π_attrs(src) and installs it in the store.
//
// Deprecated: use Snapshot/NewArena and Arena.Project (see Select).
func (s *Store) Project(res, src string, attrs ...string) (*Relation, error) {
	return s.oneShot(res, func(a *Arena) error { _, err := a.Project(res, src, attrs...); return err })
}

// Rename computes res := δ(src) and installs it in the store.
//
// Deprecated: use Snapshot/NewArena and Arena.Rename (see Select).
func (s *Store) Rename(res, src string, oldNew map[string]string) (*Relation, error) {
	return s.oneShot(res, func(a *Arena) error { _, err := a.Rename(res, src, oldNew); return err })
}

// Join computes res := l ⋈ r and installs it in the store.
//
// Deprecated: use Snapshot/NewArena and Arena.Join (see Select).
func (s *Store) Join(res, l, r, onL, onR string) (*Relation, error) {
	return s.oneShot(res, func(a *Arena) error { _, err := a.Join(res, l, r, onL, onR); return err })
}

// Product computes res := l × r and installs it in the store.
//
// Deprecated: use Snapshot/NewArena and Arena.Product (see Select).
func (s *Store) Product(res, l, r string) (*Relation, error) {
	return s.oneShot(res, func(a *Arena) error { _, err := a.Product(res, l, r); return err })
}

// Union computes res := l ∪ r and installs it in the store.
//
// Deprecated: use Snapshot/NewArena and Arena.Union (see Select).
func (s *Store) Union(res, l, r string) (*Relation, error) {
	return s.oneShot(res, func(a *Arena) error { _, err := a.Union(res, l, r); return err })
}

// Difference computes res := l − r and installs it in the store.
//
// Deprecated: use Snapshot/NewArena and Arena.Difference (see Select).
func (s *Store) Difference(res, l, r string) (*Relation, error) {
	return s.oneShot(res, func(a *Arena) error { _, err := a.Difference(res, l, r); return err })
}

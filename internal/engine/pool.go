package engine

import (
	"sync"
	"sync/atomic"
)

// Arena pooling: high-QPS prepared queries execute one arena per call, and
// the arena's maps and slices are exactly the kind of allocation a pool
// amortizes. AcquireArena hands out a reset arena over the given snapshot;
// ReleaseArena returns it once the result is dead (Rows.Close on the session
// path). Pooling is semantically invisible — a reset arena is
// indistinguishable from a fresh one — which the pooled-vs-unpooled tests
// assert under -race.

var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

// arenaReleases counts non-nil ReleaseArena calls process-wide. It is an
// instrumentation hook like BridgeConversions: the serving-layer tests assert
// that closing a cursor mid-fetch actually returns the pooled arena.
var arenaReleases atomic.Uint64

// ArenaReleases reports how many arenas this process has returned to the
// pool.
func ArenaReleases() uint64 { return arenaReleases.Load() }

// AcquireArena returns a pooled arena reset over snap; pair it with
// ReleaseArena when the arena's results are no longer referenced.
func AcquireArena(snap *Snapshot) *Arena {
	a := arenaPool.Get().(*Arena)
	a.Reset(snap)
	return a
}

// ReleaseArena resets a and returns it to the pool. The caller must hold the
// only reference: the arena's relations and components die with it. A nil
// release is a no-op, and a committed (spent) arena is safe to release — its
// installed state now belongs to the store.
func ReleaseArena(a *Arena) {
	if a == nil {
		return
	}
	a.Reset(nil)
	arenaPool.Put(a)
	arenaReleases.Add(1)
}

// Reset re-points the arena at snap and clears all session state, keeping
// allocated map capacity for reuse. A reset arena behaves exactly like one
// from NewArena.
func (a *Arena) Reset(snap *Snapshot) {
	a.snap = snap
	a.guard = nil
	for i := range a.rels {
		a.rels[i] = nil // release result templates to the GC, keep capacity
	}
	a.rels = a.rels[:0]
	a.nextCID = 0
	a.scratchSeq = 0
	if a.relID == nil {
		a.relID = make(map[string]int32)
		a.comps = make(map[int32]*Component)
		a.fieldComp = make(map[FieldID]int32)
		a.origins = make(map[int32][]int32)
		a.shadowed = make(map[int32]bool)
		a.dirty = make(map[int32]bool)
		return
	}
	clear(a.relID)
	clear(a.comps)
	clear(a.fieldComp)
	clear(a.shadowed)
	clear(a.origins)
	clear(a.dirty)
}

package engine

import (
	"fmt"
	"sort"
)

// Arena is the write side of a query: a private overlay over one Snapshot
// that holds the session's result relations and its copies of the
// components they extend. Operators (Select, Project, Rename, Join,
// Product, Union, Difference) run as Arena methods: they read base data from the
// snapshot and materialize results — template relations and extended or
// composed component rows — into the arena, never touching the shared
// store. Dropping the arena (letting it go out of scope) releases every
// result at once; Commit installs the arena's relations into the parent
// store for workloads that feed one query's result into the next.
//
// Arena relations carry negative ids and arena components negative
// component ids, so they can never collide with snapshot state. When an
// operator needs a component of the snapshot — to read presence masks, to
// compose it with another, or to extend it with result-field copies — the
// arena first adopts it: deep-copies it under a fresh negative id and
// remaps all its fields. Adoption keeps component pointers stable for the
// rest of the arena's life, which the operators' phase structure relies on.
//
// An Arena is single-goroutine state: one per session/query. Concurrency
// comes from many arenas over shared snapshots.
type Arena struct {
	snap *Snapshot
	// rels holds the arena's relations; index i has id -(i+1).
	rels  []*Relation
	relID map[string]int32
	// comps holds adopted copies, compositions and their extensions, under
	// negative ids.
	comps   map[int32]*Component
	nextCID int32
	// fieldComp overlays the snapshot's field→component index: fields of
	// adopted components (including their base-relation fields) and of
	// arena relations resolve here first.
	fieldComp map[FieldID]int32
	// origins maps each arena component to the snapshot component ids it
	// covers (one for an adoption, several after compositions); shadowed is
	// their union, hiding them from eachComp.
	origins  map[int32][]int32
	shadowed map[int32]bool
	// dirty marks arena components that diverged from their origins
	// (extended, composed, or trimmed); Commit installs only these.
	dirty      map[int32]bool
	scratchSeq int64
	// guard is the execution's cancellation/memory checkpoint (cancel.go);
	// nil means never canceled.
	guard *Guard
}

// NewArena creates an empty arena over a snapshot.
func NewArena(snap *Snapshot) *Arena {
	return &Arena{
		snap:      snap,
		relID:     make(map[string]int32),
		comps:     make(map[int32]*Component),
		fieldComp: make(map[FieldID]int32),
		origins:   make(map[int32][]int32),
		shadowed:  make(map[int32]bool),
		dirty:     make(map[int32]bool),
	}
}

// Rel returns the named relation — the arena's own first, then the
// snapshot's — or nil.
func (a *Arena) Rel(name string) *Relation {
	if id, ok := a.relID[name]; ok {
		return a.rels[-id-1]
	}
	return a.snap.Rel(name)
}

// relByID resolves a relation id: negative ids are arena relations.
func (a *Arena) relByID(id int32) *Relation {
	if id < 0 {
		i := int(-id - 1)
		if i >= len(a.rels) {
			return nil
		}
		return a.rels[i]
	}
	return a.snap.relByID(id)
}

// Relations returns the names of the snapshot's relations plus the arena's
// own results.
func (a *Arena) Relations() []string {
	out := a.snap.Relations()
	for _, r := range a.rels {
		if r != nil {
			out = append(out, r.Name)
		}
	}
	return out
}

// NewScratch returns a fresh arena-scoped relation name for query results
// and intermediates. Scratch names carry a NUL byte, which no SQL
// identifier can contain, so they never collide with user relations.
func (a *Arena) NewScratch() string {
	a.scratchSeq++
	return fmt.Sprintf("\x00q%d", a.scratchSeq)
}

// Stats computes the representation statistics of one relation as seen
// through the arena (arena results and snapshot relations alike).
func (a *Arena) Stats(rel string) Stats { return statsOf(a, rel) }

// addRelation registers a new arena relation (the operators' result
// namespace); mirrors Store.AddRelation.
func (a *Arena) addRelation(name string, attrs []string, cols [][]int32) (*Relation, error) {
	if a.Rel(name) != nil {
		return nil, fmt.Errorf("engine: relation %q already exists", name)
	}
	if len(cols) != len(attrs) {
		return nil, fmt.Errorf("engine: %d columns for %d attributes", len(cols), len(attrs))
	}
	n := -1
	for i, c := range cols {
		if n < 0 {
			n = len(c)
		}
		if len(c) != n {
			return nil, fmt.Errorf("engine: column %s has %d rows, want %d", attrs[i], len(c), n)
		}
	}
	r := &Relation{
		id:        int32(-len(a.rels) - 1),
		Name:      name,
		Attrs:     append([]string(nil), attrs...),
		Cols:      cols,
		uncertain: make(map[int32][]uint16),
	}
	a.rels = append(a.rels, r)
	a.relID[name] = r.id
	return r, nil
}

// RenameRelation renames an arena relation (snapshot relations are
// read-only through an arena).
func (a *Arena) RenameRelation(old, new string) error {
	id, ok := a.relID[old]
	if !ok {
		if a.snap.Rel(old) != nil {
			return fmt.Errorf("engine: relation %q is read-only through this arena", old)
		}
		return fmt.Errorf("engine: unknown relation %q", old)
	}
	if a.Rel(new) != nil {
		return fmt.Errorf("engine: relation %q already exists", new)
	}
	delete(a.relID, old)
	a.relID[new] = id
	a.rels[-id-1].Name = new
	return nil
}

// DropRelation removes an arena relation and projects its fields away from
// the arena's components. Snapshot relations are untouched (they are not
// the arena's to drop).
func (a *Arena) DropRelation(name string) {
	id, ok := a.relID[name]
	if !ok {
		return
	}
	r := a.rels[-id-1]
	for row, attrs := range r.uncertain {
		for _, at := range attrs {
			f := FieldID{Rel: id, Row: row, Attr: at}
			cid, ok := a.fieldComp[f]
			if !ok {
				continue
			}
			delete(a.fieldComp, f)
			c := a.comps[cid]
			dropFieldFromComp(c, f)
			a.dirty[cid] = true
			if len(c.Fields) == 0 {
				// Only possible for components covering no snapshot fields
				// (origins empty): base-relation fields are never dropped
				// through an arena.
				delete(a.comps, cid)
				delete(a.dirty, cid)
				delete(a.origins, cid)
			}
		}
	}
	a.rels[-id-1] = nil
	delete(a.relID, name)
}

// compFor resolves the component defining field f for operator use,
// adopting it into the arena first if it still lives in the snapshot. The
// returned pointer is stable for the arena's lifetime.
func (a *Arena) compFor(f FieldID) *Component {
	if cid, ok := a.fieldComp[f]; ok {
		return a.comps[cid]
	}
	c := a.snap.compOf(f)
	if c == nil {
		return nil
	}
	return a.adopt(c)
}

// adopt copies a snapshot component into the arena, remapping its fields.
func (a *Arena) adopt(c *Component) *Component {
	a.nextCID--
	nc := cloneComponent(c)
	nc.ID = a.nextCID
	a.comps[nc.ID] = nc
	a.origins[nc.ID] = []int32{c.ID}
	a.shadowed[c.ID] = true
	for _, f := range nc.Fields {
		a.fieldComp[f] = nc.ID
	}
	return nc
}

// compOf returns the component defining f without adopting it (the
// read-only view used by Stats and the WSD bridge).
func (a *Arena) compOf(f FieldID) *Component {
	if cid, ok := a.fieldComp[f]; ok {
		return a.comps[cid]
	}
	return a.snap.compOf(f)
}

// eachComp visits the arena's components plus the snapshot components not
// shadowed by adoptions.
func (a *Arena) eachComp(fn func(*Component)) {
	for _, c := range a.comps {
		fn(c)
	}
	a.snap.eachComp(func(c *Component) {
		if !a.shadowed[c.ID] {
			fn(c)
		}
	})
}

// mergeComps composes the distinct components of the given fields into one
// arena component and returns it; the arena analogue of Store.mergeComps.
func (a *Arena) mergeComps(fields ...FieldID) (*Component, error) {
	seen := make(map[int32]bool)
	var cs []*Component
	for _, f := range fields {
		c := a.compFor(f)
		if c == nil {
			return nil, fmt.Errorf("engine: field %v has no component", f)
		}
		if !seen[c.ID] {
			seen[c.ID] = true
			cs = append(cs, c)
		}
	}
	if len(cs) == 1 {
		return cs[0], nil
	}
	total := 0
	for _, c := range cs {
		total += len(c.Fields)
	}
	if total > MaxCompFields {
		return nil, fmt.Errorf("engine: composing %d fields exceeds limit %d", total, MaxCompFields)
	}
	merged := cs[0]
	for _, c := range cs[1:] {
		if len(merged.Rows)*len(c.Rows) > MaxCompRows {
			return nil, fmt.Errorf("engine: composing components would exceed %d local worlds (the exponential join blow-up of Section 4); rewrite the query or lower the density", MaxCompRows)
		}
		merged = composeComponents(merged, c)
		compressComponent(merged)
	}
	a.nextCID--
	merged.ID = a.nextCID
	a.comps[merged.ID] = merged
	a.dirty[merged.ID] = true
	var origs []int32
	for _, c := range cs {
		delete(a.comps, c.ID)
		delete(a.dirty, c.ID)
		origs = append(origs, a.origins[c.ID]...)
		delete(a.origins, c.ID)
	}
	a.origins[merged.ID] = origs
	for _, f := range merged.Fields {
		a.fieldComp[f] = merged.ID
	}
	return merged, nil
}

// addField appends a new field column to arena component c; the arena
// analogue of Store.addField. c must have been obtained through compFor or
// mergeComps (arena components only).
func (a *Arena) addField(c *Component, f FieldID, vals []int32, absent []bool) error {
	if c.ID >= 0 {
		return fmt.Errorf("engine: addField on non-arena component %d", c.ID)
	}
	if len(c.Fields) >= MaxCompFields {
		return fmt.Errorf("engine: component %d is full", c.ID)
	}
	if len(vals) != len(c.Rows) || len(absent) != len(c.Rows) {
		return fmt.Errorf("engine: addField: %d values for %d rows", len(vals), len(c.Rows))
	}
	col := len(c.Fields)
	c.Fields = append(c.Fields, f)
	c.pos[f] = col
	for i := range c.Rows {
		if err := a.tick(); err != nil {
			return err
		}
		c.Rows[i].Vals = append(c.Rows[i].Vals, vals[i])
		if absent[i] {
			c.Rows[i].Absent = c.Rows[i].Absent.Set(col)
		}
	}
	a.fieldComp[f] = c.ID
	a.dirty[c.ID] = true
	return nil
}

// Commit installs the arena's relations and modified components into the
// parent store: relations get fresh store ids, dirty components replace
// the snapshot components they cover, and the store's indexes are rewritten
// under the store's copy-on-write discipline — live snapshots keep reading
// their frozen view. Commit fails, leaving the store untouched, if a
// relation name is taken or the involved catalog entries changed since the
// snapshot was taken. The arena must not be used after Commit.
func (a *Arena) Commit() error {
	s := a.snap.store
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range a.rels {
		if r == nil {
			continue
		}
		if _, dup := s.relID[r.Name]; dup {
			return fmt.Errorf("engine: relation %q already exists", r.Name)
		}
	}
	dirty := make([]int32, 0, len(a.dirty))
	for cid := range a.dirty {
		dirty = append(dirty, cid)
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] > dirty[j] }) // creation order: -1, -2, ...
	for _, cid := range dirty {
		for _, orig := range a.origins[cid] {
			if s.comps[orig] != a.snap.comps[orig] {
				return fmt.Errorf("engine: commit conflicts with a concurrent change to component %d", orig)
			}
		}
		for _, f := range a.comps[cid].Fields {
			if f.Rel >= 0 && (int(f.Rel) >= len(s.rels) || s.rels[f.Rel] == nil || s.rels[f.Rel] != a.snap.relByID(f.Rel)) {
				return fmt.Errorf("engine: commit conflicts with a concurrent change to relation %d", f.Rel)
			}
		}
	}
	s.detachLocked()
	relMap := make(map[int32]int32, len(a.rels))
	for i, r := range a.rels {
		if r == nil {
			continue
		}
		nid := int32(len(s.rels))
		relMap[int32(-i-1)] = nid
		r.id = nid
		s.rels = append(s.rels, r)
		s.relID[r.Name] = nid
	}
	for _, cid := range dirty {
		c := a.comps[cid]
		for _, orig := range a.origins[cid] {
			delete(s.comps, orig)
		}
		s.nextCID++
		c.ID = s.nextCID
		for i, f := range c.Fields {
			if f.Rel < 0 {
				f.Rel = relMap[f.Rel]
				c.Fields[i] = f
			}
		}
		c.pos = make(map[FieldID]int, len(c.Fields))
		for i, f := range c.Fields {
			c.pos[f] = i
		}
		s.comps[c.ID] = c
		for _, f := range c.Fields {
			s.fieldComp[f] = c.ID
		}
	}
	a.snap = nil // poison: the arena is spent
	return nil
}

// Space is the operator surface a compiled plan executes against: a
// per-session Arena (the concurrent read path) or, through the deprecated
// one-shot wrappers, the Store itself (which commits each operator's result
// in place).
type Space interface {
	Select(res, src string, p Pred) (*Relation, error)
	Project(res, src string, attrs ...string) (*Relation, error)
	Rename(res, src string, oldNew map[string]string) (*Relation, error)
	Join(res, l, r, onL, onR string) (*Relation, error)
	Product(res, l, r string) (*Relation, error)
	Union(res, l, r string) (*Relation, error)
	Difference(res, l, r string) (*Relation, error)
	DropRelation(name string)
	Rel(name string) *Relation
	Stats(rel string) Stats
}

var (
	_ Space = (*Arena)(nil)
	_ Space = (*Store)(nil)
)

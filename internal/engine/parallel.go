package engine

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Morsel-parallel confidence: the tuple-level view's groups are independent
// factors, so disjoint group subsets can be swept by separate accumulators on
// separate goroutines and the per-tuple mass lists merged afterwards. Because
// every group is swept whole by one worker (the per-group mass is a
// local-world-ordered sum) and FoldMasses folds each tuple's mass multiset in
// canonical order, the parallel result is byte-identical to the serial one —
// the property the shard subsystem's differential tests pin down.

// DefaultConfWorkers is the worker count used when a caller passes 0: derived
// from GOMAXPROCS, clamped to [1, MaxConfWorkers].
func DefaultConfWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w < 1 {
		w = 1
	}
	if w > MaxConfWorkers {
		w = MaxConfWorkers
	}
	return w
}

// MaxConfWorkers clamps worker pools: beyond this, merge overhead dominates.
const MaxConfWorkers = 16

// parallelThreshold is the minimum amount of scoring work (certain rows plus
// groups) worth fanning out; below it a single sweep wins.
const parallelThreshold = 256

// possibleMassesParallel is possibleMassesOf with the sweep striped over a
// worker pool: worker w scores certain-row chunk w and every group g with
// index ≡ w (mod workers). The merged result is identical to the serial one.
func possibleMassesParallel(v catView, rel string, workers int) ([]TupleMasses, error) {
	if workers <= 0 {
		workers = DefaultConfWorkers()
	}
	tv, err := tupleLevelView(v, rel)
	if err != nil {
		return nil, err
	}
	work := len(tv.certain) + len(tv.groups)
	if workers > work {
		workers = work
	}
	guard := guardOf(v)
	if workers <= 1 || work < parallelThreshold {
		ac := newTupleAccum()
		ac.internCertain(tv.rel, tv.certain)
		if err := ac.sweepGroups(tv.rel, tv.groups, guard); err != nil {
			return nil, err
		}
		return ac.sorted(), nil
	}
	// The workers share one guard: its tick counter and failure latch are
	// atomic, so the first worker to hit a cancel or budget failure stops the
	// whole pool within a checkpoint period. Worker panics are contained here
	// and surface as an error — a poisoned fold must not kill the process.
	parts := make([][]TupleMasses, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[w] = fmt.Errorf("engine: confidence fold worker panic: %v", p)
				}
			}()
			ac := newTupleAccum()
			lo := len(tv.certain) * w / workers
			hi := len(tv.certain) * (w + 1) / workers
			ac.internCertain(tv.rel, tv.certain[lo:hi])
			var groups []*tlGroup
			for i := w; i < len(tv.groups); i += workers {
				groups = append(groups, tv.groups[i])
			}
			if err := ac.sweepGroups(tv.rel, groups, guard); err != nil {
				errs[w] = err
				return
			}
			parts[w] = ac.sorted()
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return MergeMasses(guard, parts)
}

// MergeMasses merges per-part pre-fold confidence tables — each produced by
// PossibleMasses over a disjoint subset of the independent groups (a shard,
// or a worker's stripe) — into one canonical table: equal tuples concatenate
// their mass lists and OR their certain flags. The merged mass multiset per
// tuple equals the unsharded one, so FoldMasses yields byte-identical
// confidences.
func MergeMasses(g *Guard, parts [][]TupleMasses) ([]TupleMasses, error) {
	nonEmpty := 0
	for _, p := range parts {
		if len(p) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty <= 1 {
		for _, p := range parts {
			if len(p) > 0 {
				return p, nil
			}
		}
		return nil, nil
	}
	idx := make(map[string]int)
	var out []TupleMasses
	var key []byte
	for _, part := range parts {
		for _, tm := range part {
			if err := g.Tick(); err != nil {
				return nil, err
			}
			key = AppendTupleKey(key[:0], tm.Tuple)
			i, ok := idx[string(key)]
			if !ok {
				i = len(out)
				idx[string(key)] = i
				out = append(out, TupleMasses{Tuple: tm.Tuple})
			}
			out[i].Certain = out[i].Certain || tm.Certain
			out[i].Masses = append(out[i].Masses, tm.Masses...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return CompareTuples(out[i].Tuple, out[j].Tuple) < 0 })
	return out, nil
}

// FoldMassTable folds a merged pre-fold table into the final confidence
// table (certain tuples are exactly 1), ticking g per tuple (nil is a
// no-op guard).
func FoldMassTable(g *Guard, tms []TupleMasses) ([]TupleConf, error) { return foldAll(g, tms) }

// PossiblePParallel computes the confidence table of rel with the group
// sweep striped over a pool of workers (0 = DefaultConfWorkers). The result
// is byte-identical to PossibleP.
func (a *Arena) PossiblePParallel(rel string, workers int) ([]TupleConf, error) {
	tms, err := possibleMassesParallel(a, rel, workers)
	if err != nil {
		return nil, err
	}
	return foldAll(a.guard, tms)
}

// PossiblePParallel computes the confidence table of rel on the snapshot
// with a parallel group sweep; byte-identical to PossibleP.
func (sn *Snapshot) PossiblePParallel(rel string, workers int) ([]TupleConf, error) {
	tms, err := possibleMassesParallel(sn, rel, workers)
	if err != nil {
		return nil, err
	}
	return foldAll(guardOf(sn), tms)
}

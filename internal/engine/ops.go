package engine

import "fmt"

// This file implements the relational operators on the columnar UWSDT
// store: selection (with arbitrary predicates over one tuple), projection,
// renaming, and equi-join (in join.go). The rewritten operators follow
// Section 5: results are new template relations whose placeholders share
// the component space with their inputs, and tuple absence is tracked by
// per-(field, local world) presence — the uniform encoding of worlds of
// different sizes.
//
// Operators are Arena methods: they read base data through the arena's
// snapshot and write result templates and extended component rows into the
// arena, leaving the shared store untouched — which is what lets many
// sessions run SELECTs concurrently. The Store methods of the same names
// are deprecated one-shot wrappers that commit the arena back.

type rowPlan struct {
	src  int32
	pass []bool     // per local world of comp: present and condition true; nil = certain presence
	comp *Component // merged component of the referenced uncertain fields
}

// Select computes res := σ_p(src). Rows whose referenced fields are certain
// are filtered directly on the template; rows with uncertain referenced
// fields keep one presence bit per local world of the (possibly composed)
// component holding those fields.
func (a *Arena) Select(res, src string, p Pred) (*Relation, error) {
	r := a.Rel(src)
	if r == nil {
		return nil, fmt.Errorf("engine: unknown relation %q", src)
	}
	if a.Rel(res) != nil {
		return nil, fmt.Errorf("engine: relation %q already exists", res)
	}
	cp, err := p.Compile(r)
	if err != nil {
		return nil, err
	}
	predAttrs := cp.Attrs()

	// Phase 1: compose, per row, the components of the uncertain fields the
	// condition references (σ(AθB) and multi-attribute conditions entangle
	// them). All composition happens before evaluation so local-world
	// indexes stay stable.
	for row, uattrs := range r.uncertain {
		var fields []FieldID
		for _, at := range predAttrs {
			if containsAttr(uattrs, at) {
				fields = append(fields, FieldID{Rel: r.id, Row: row, Attr: at})
			}
		}
		if len(fields) > 1 {
			if _, err := a.mergeComps(fields...); err != nil {
				return nil, err
			}
		}
	}

	// Phase 2: evaluate the condition per row (and per local world for rows
	// with referenced uncertain fields).
	var plans []rowPlan
	n := r.NumRows()
	for i := 0; i < n; i++ {
		if err := a.tick(); err != nil {
			return nil, err
		}
		row := int32(i)
		uattrs := r.uncertain[row]
		var refUnc []uint16
		for _, at := range predAttrs {
			if containsAttr(uattrs, at) {
				refUnc = append(refUnc, at)
			}
		}
		if len(refUnc) == 0 {
			if cp.Eval(func(ai uint16) int32 { return r.Cols[ai][i] }) {
				plans = append(plans, rowPlan{src: row})
			}
			continue
		}
		comp := a.compFor(FieldID{Rel: r.id, Row: row, Attr: refUnc[0]})
		cols := make(map[uint16]int, len(refUnc))
		for _, at := range refUnc {
			cols[at] = comp.Pos(FieldID{Rel: r.id, Row: row, Attr: at})
		}
		pass := make([]bool, len(comp.Rows))
		any := false
		for w := range comp.Rows {
			crow := &comp.Rows[w]
			absent := false
			for _, at := range refUnc {
				if crow.IsAbsent(cols[at]) {
					absent = true
					break
				}
			}
			if absent {
				continue
			}
			ok := cp.Eval(func(ai uint16) int32 {
				if ci, isU := cols[ai]; isU {
					return crow.Vals[ci]
				}
				return r.Cols[ai][i]
			})
			if ok {
				pass[w] = true
				any = true
			}
		}
		if any {
			plans = append(plans, rowPlan{src: row, pass: pass, comp: comp})
		}
	}
	return a.materialize(res, r, nil, plans)
}

// materialize builds the result template from the planned source rows and
// extends the arena's components with the result fields. attrOrder selects
// and orders the source attributes (nil = all, source order). For plans
// with a presence mask, the copies of the row's uncertain fields living in
// the plan's component are marked absent at failing local worlds.
func (a *Arena) materialize(res string, r *Relation, attrOrder []uint16, plans []rowPlan) (*Relation, error) {
	if attrOrder == nil {
		attrOrder = make([]uint16, len(r.Attrs))
		for i := range attrOrder {
			attrOrder[i] = uint16(i)
		}
	}
	attrs := make([]string, len(attrOrder))
	for i, at := range attrOrder {
		attrs[i] = r.Attrs[at]
	}
	cols := make([][]int32, len(attrOrder))
	for i := range cols {
		cols[i] = make([]int32, len(plans))
	}
	for j, pl := range plans {
		if err := a.tick(); err != nil {
			return nil, err
		}
		for i, at := range attrOrder {
			cols[i][j] = r.Cols[at][pl.src]
		}
	}
	out, err := a.addRelation(res, attrs, cols)
	if err != nil {
		return nil, err
	}
	// Position of each source attribute in the result (or -1 if dropped).
	dstOf := make([]int, len(r.Attrs))
	for i := range dstOf {
		dstOf[i] = -1
	}
	for i, at := range attrOrder {
		dstOf[at] = i
	}
	for j, pl := range plans {
		if err := a.tick(); err != nil {
			return nil, err
		}
		for _, at := range r.uncertain[pl.src] {
			di := dstOf[at]
			if di < 0 {
				continue // dropped attribute; Project handles ⊥ propagation
			}
			srcF := FieldID{Rel: r.id, Row: pl.src, Attr: at}
			comp := a.compFor(srcF)
			col := comp.Pos(srcF)
			vals := make([]int32, len(comp.Rows))
			absent := make([]bool, len(comp.Rows))
			for w := range comp.Rows {
				vals[w] = comp.Rows[w].Vals[col]
				absent[w] = comp.Rows[w].IsAbsent(col)
				if pl.pass != nil && comp == pl.comp && !pl.pass[w] {
					absent[w] = true
				}
			}
			dstF := FieldID{Rel: out.id, Row: int32(j), Attr: uint16(di)}
			if err := a.addField(comp, dstF, vals, absent); err != nil {
				return nil, err
			}
			out.Cols[di][j] = Placeholder
			out.uncertain[int32(j)] = append(out.uncertain[int32(j)], uint16(di))
		}
	}
	return out, nil
}

// Project computes res := π_attrs(src), keeping one result row per source
// row (tuple slots; duplicates coincide at decode time). When a dropped
// uncertain field records tuple absence, that absence is propagated into
// the kept fields — composing components when necessary — so deleted tuples
// are not resurrected (the ⊥-propagation of Figure 9 in uniform encoding).
func (a *Arena) Project(res, src string, attrs ...string) (*Relation, error) {
	r := a.Rel(src)
	if r == nil {
		return nil, fmt.Errorf("engine: unknown relation %q", src)
	}
	if a.Rel(res) != nil {
		return nil, fmt.Errorf("engine: relation %q already exists", res)
	}
	order := make([]uint16, len(attrs))
	keep := make(map[uint16]bool, len(attrs))
	for i, at := range attrs {
		ai, err := r.AttrIndex(at)
		if err != nil {
			return nil, err
		}
		if keep[ai] {
			return nil, fmt.Errorf("engine: duplicate projection attribute %q", at)
		}
		order[i] = ai
		keep[ai] = true
	}

	// Phase 1: for every row whose dropped uncertain fields can mark the
	// tuple absent, compose their components with those of the kept
	// uncertain fields of the row.
	type propagate struct {
		row     int32
		dropped []FieldID // dropped fields carrying absence
		kept    []FieldID // kept uncertain fields
	}
	var props []propagate
	for row, uattrs := range r.uncertain {
		if err := a.tick(); err != nil {
			return nil, err
		}
		var pr propagate
		pr.row = row
		for _, at := range uattrs {
			f := FieldID{Rel: r.id, Row: row, Attr: at}
			if keep[at] {
				pr.kept = append(pr.kept, f)
				continue
			}
			if a.fieldHasAbsence(f) {
				pr.dropped = append(pr.dropped, f)
			}
		}
		if len(pr.dropped) == 0 {
			continue
		}
		if _, err := a.mergeComps(append(append([]FieldID{}, pr.dropped...), pr.kept...)...); err != nil {
			return nil, err
		}
		props = append(props, pr)
	}

	// Phase 2: materialize all rows (no filtering in projection).
	plans := make([]rowPlan, r.NumRows())
	for i := range plans {
		plans[i] = rowPlan{src: int32(i)}
	}
	// Rows needing ⊥ propagation get a presence mask over the merged
	// component: present where no dropped field is absent.
	planOf := make(map[int32]*rowPlan, len(props))
	for i := range plans {
		planOf[plans[i].src] = &plans[i]
	}
	for _, pr := range props {
		if err := a.tick(); err != nil {
			return nil, err
		}
		comp := a.compFor(pr.dropped[0])
		pass := make([]bool, len(comp.Rows))
		for w := range comp.Rows {
			ok := true
			for _, f := range pr.dropped {
				if comp.Rows[w].IsAbsent(comp.Pos(f)) {
					ok = false
					break
				}
			}
			pass[w] = ok
		}
		pl := planOf[pr.row]
		pl.pass = pass
		pl.comp = comp
	}
	out, err := a.materialize(res, r, order, plans)
	if err != nil {
		return nil, err
	}
	// Rows with absence-carrying dropped fields but no kept uncertain field
	// need a presence carrier: the first kept attribute becomes a
	// placeholder with a constant value, absent where the tuple is absent.
	for _, pr := range props {
		if err := a.tick(); err != nil {
			return nil, err
		}
		if len(pr.kept) > 0 {
			continue
		}
		j := pr.row // materialize keeps all rows in order for Project
		comp := a.compFor(pr.dropped[0])
		pass := planOf[pr.row].pass
		vals := make([]int32, len(comp.Rows))
		absent := make([]bool, len(comp.Rows))
		cert := out.Cols[0][j]
		for w := range comp.Rows {
			vals[w] = cert
			absent[w] = !pass[w]
		}
		dstF := FieldID{Rel: out.id, Row: j, Attr: 0}
		if err := a.addField(comp, dstF, vals, absent); err != nil {
			return nil, err
		}
		out.Cols[0][j] = Placeholder
		out.uncertain[j] = append(out.uncertain[j], 0)
	}
	return out, nil
}

// fieldHasAbsence reports whether field f is absent in some local world.
func (a *Arena) fieldHasAbsence(f FieldID) bool {
	c := a.compOf(f)
	if c == nil {
		return false
	}
	return compFieldHasAbsence(c, f)
}

// compFieldHasAbsence reports whether f is absent in some local world.
//
//maybms:unguarded bounded single-component probe; the planning loops that call it tick per candidate
func compFieldHasAbsence(c *Component, f FieldID) bool {
	col := c.Pos(f)
	for _, r := range c.Rows {
		if r.IsAbsent(col) {
			return true
		}
	}
	return false
}

// Rename computes res := δ(src) with the attribute renamings given as
// old → new pairs; the data is copied like an all-attribute projection.
func (a *Arena) Rename(res, src string, oldNew map[string]string) (*Relation, error) {
	r := a.Rel(src)
	if r == nil {
		return nil, fmt.Errorf("engine: unknown relation %q", src)
	}
	for old := range oldNew {
		if _, err := r.AttrIndex(old); err != nil {
			return nil, err
		}
	}
	out, err := a.Project(res, src, r.Attrs...)
	if err != nil {
		return nil, err
	}
	for i, at := range out.Attrs {
		if n, ok := oldNew[at]; ok {
			out.Attrs[i] = n
		}
	}
	seen := map[string]bool{}
	for _, at := range out.Attrs {
		if seen[at] {
			return nil, fmt.Errorf("engine: rename produces duplicate attribute %q", at)
		}
		seen[at] = true
	}
	return out, nil
}

func containsAttr(xs []uint16, a uint16) bool {
	for _, x := range xs {
		if x == a {
			return true
		}
	}
	return false
}

package engine

import (
	"fmt"
	"sync/atomic"

	"maybms/internal/core"
	"maybms/internal/relation"
	"maybms/internal/worlds"
)

// bridgeConversions counts WSD bridge crossings (wsdOf calls). The query
// path computes confidence natively (conf.go) and must never cross; tests
// assert the counter stays flat across CONF()/POSSIBLE/CERTAIN executions.
var bridgeConversions atomic.Int64

// BridgeConversions returns the number of WSD bridge conversions performed
// since process start; a testing aid for asserting bridge-free paths.
func BridgeConversions() int64 { return bridgeConversions.Load() }

// ToWSD converts the store into a generic WSD over all live relations. This
// bridge exists for testing and for small data: the engine's operators are
// property-tested against per-world evaluation through it, and examples use
// it to hand engine results to the confidence and normalization packages.
// Values become relation.Int; absent fields become ⊥.
//
// Deprecated as a query path: confidence is computed natively on the
// columnar representation (Conf, PossibleP, Possible, Certain on Arena,
// Snapshot and Store — see conf.go), with no WSD materialization. The
// bridge plus internal/confidence survive as the reference oracle the
// native path is differential-tested against; new code should not route
// query answers through them.
func (s *Store) ToWSD() (*core.WSD, error) {
	return s.ToWSDOf(s.Relations()...)
}

// ToWSDOf converts only the named relations — and the components reachable
// from them — into a WSD (see Arena.ToWSDOf for the semantics; on a Store
// it reads the live catalog).
func (s *Store) ToWSDOf(names ...string) (*core.WSD, error) {
	return wsdOf(s, names...)
}

// ToWSDOf converts only the named relations — and the components reachable
// from them, in the arena's view (arena results shadowing shared
// components they extended) — into a WSD. Components spanning both named
// and unnamed relations are marginalized: the fields of unnamed relations
// are projected away and local worlds that become indistinguishable merge,
// summing their probabilities. The result carries the exact distribution of
// the named relations, at a size independent of everything else in the
// store, which is what makes confidence computation on query results scale:
// CONF() over a small result no longer pays for base relations the query
// never touched.
func (a *Arena) ToWSDOf(names ...string) (*core.WSD, error) {
	return wsdOf(a, names...)
}

//maybms:unguarded bridge to the reference WSD representation; testing and EXPLAIN only, never a query answer path
func wsdOf(v catView, names ...string) (*core.WSD, error) {
	bridgeConversions.Add(1)
	include := make(map[int32]bool, len(names))
	var rels []worlds.RelSchema
	var included []*Relation
	maxCard := make(map[string]int)
	for _, name := range names {
		r := v.Rel(name)
		if r == nil {
			return nil, fmt.Errorf("engine: unknown relation %q", name)
		}
		if include[r.id] {
			return nil, fmt.Errorf("engine: relation %q named twice", name)
		}
		include[r.id] = true
		included = append(included, r)
		rels = append(rels, worlds.RelSchema{Name: r.Name, Attrs: append([]string(nil), r.Attrs...)})
		maxCard[r.Name] = r.NumRows()
	}
	w := core.New(worlds.NewSchema(rels...), maxCard)

	// Uncertain fields: one core component per reachable engine component,
	// restricted to the fields of the named relations.
	var compErr error
	v.eachComp(func(c *Component) {
		if compErr != nil {
			return
		}
		var keep []int // column indexes of fields in named relations
		for i, f := range c.Fields {
			if include[f.Rel] {
				keep = append(keep, i)
			}
		}
		if len(keep) == 0 {
			return
		}
		fields := make([]core.FieldRef, len(keep))
		for i, col := range keep {
			f := c.Fields[col]
			r := v.relByID(f.Rel)
			if r == nil {
				compErr = fmt.Errorf("engine: component %d references dropped relation", c.ID)
				return
			}
			fields[i] = core.FieldRef{Rel: r.Name, Tuple: int(f.Row) + 1, Attr: r.Attrs[f.Attr]}
		}
		cc := core.NewComponent(fields)
		// Marginalize: project each local world onto the kept fields and
		// merge duplicates, summing probabilities.
		seen := make(map[string]int, len(c.Rows))
		var merged []core.Row
		key := make([]byte, 0, 8*len(keep))
		for _, row := range c.Rows {
			key = key[:0]
			for _, col := range keep {
				key = appendFieldKey(key, row.Vals[col], row.IsAbsent(col))
			}
			if j, ok := seen[string(key)]; ok {
				merged[j].P += row.P
				continue
			}
			vals := make([]relation.Value, len(keep))
			for i, col := range keep {
				if row.IsAbsent(col) {
					vals[i] = relation.Bottom()
				} else {
					vals[i] = relation.Int(int64(row.Vals[col]))
				}
			}
			seen[string(key)] = len(merged)
			merged = append(merged, core.Row{Values: vals, P: row.P})
		}
		for _, row := range merged {
			cc.AddRow(row)
		}
		if err := w.AddComponent(cc); err != nil {
			compErr = err
		}
	})
	if compErr != nil {
		return nil, compErr
	}

	// Certain fields: single-row components with probability 1.
	for _, r := range included {
		for i := 0; i < r.NumRows(); i++ {
			for ai, a := range r.Attrs {
				val := r.Cols[ai][i]
				if val == Placeholder {
					continue
				}
				f := core.FieldRef{Rel: r.Name, Tuple: i + 1, Attr: a}
				cc := core.NewComponent([]core.FieldRef{f},
					core.Row{Values: []relation.Value{relation.Int(int64(val))}, P: 1})
				if err := w.AddComponent(cc); err != nil {
					return nil, err
				}
			}
		}
	}
	return w, nil
}

// RepRelation enumerates the world-set of one relation; testing only. It
// goes through the scoped bridge, so enumeration cost is driven by the one
// relation rather than the whole store.
func (s *Store) RepRelation(rel string, maxWorlds int) (*worlds.WorldSet, error) {
	w, err := s.ToWSDOf(rel)
	if err != nil {
		return nil, err
	}
	return w.RepRelation(rel, maxWorlds)
}

// RepRelation enumerates the world-set of one relation as seen through the
// arena; testing only.
func (a *Arena) RepRelation(rel string, maxWorlds int) (*worlds.WorldSet, error) {
	w, err := a.ToWSDOf(rel)
	if err != nil {
		return nil, err
	}
	return w.RepRelation(rel, maxWorlds)
}

// Validate checks store invariants: field/component index agreement,
// probability sums, bitmap width, and placeholder bookkeeping.
//
//maybms:unguarded debug invariant check, not on any query path
func (s *Store) Validate(eps float64) error {
	for cid, c := range s.comps {
		if c.ID != cid {
			return fmt.Errorf("engine: component id mismatch %d vs %d", c.ID, cid)
		}
		if len(c.Fields) > MaxCompFields {
			return fmt.Errorf("engine: component %d has %d fields", cid, len(c.Fields))
		}
		for i, f := range c.Fields {
			if c.pos[f] != i {
				return fmt.Errorf("engine: component %d field index broken", cid)
			}
			if s.fieldComp[f] != cid {
				return fmt.Errorf("engine: field %v maps to wrong component", f)
			}
			r := s.relByID(f.Rel)
			if r == nil {
				return fmt.Errorf("engine: component %d references dropped relation", cid)
			}
			if r.Cols[f.Attr][f.Row] != Placeholder {
				return fmt.Errorf("engine: field %v not a placeholder in template", f)
			}
		}
		total := c.TotalP()
		if total < 1-eps || total > 1+eps {
			return fmt.Errorf("engine: component %d probabilities sum to %g", cid, total)
		}
		for _, row := range c.Rows {
			if len(row.Vals) != len(c.Fields) {
				return fmt.Errorf("engine: component %d row arity mismatch", cid)
			}
		}
	}
	for f, cid := range s.fieldComp {
		c, ok := s.comps[cid]
		if !ok {
			return fmt.Errorf("engine: field %v maps to dead component %d", f, cid)
		}
		if c.Pos(f) < 0 {
			return fmt.Errorf("engine: field %v missing from its component", f)
		}
	}
	for _, r := range s.rels {
		if r == nil {
			continue
		}
		for row, attrs := range r.uncertain {
			for _, a := range attrs {
				if r.Cols[a][row] != Placeholder {
					return fmt.Errorf("engine: %s row %d attr %d marked uncertain but certain", r.Name, row, a)
				}
				if _, ok := s.fieldComp[FieldID{Rel: r.id, Row: row, Attr: a}]; !ok {
					return fmt.Errorf("engine: %s row %d attr %d has no component", r.Name, row, a)
				}
			}
		}
	}
	return nil
}

package engine

import (
	"fmt"
	"sort"
)

// This file is the engine half of the persistence contract with
// internal/storage: a flat, exported view of a store's state that a codec
// can serialize without knowing the engine's invariants, and an importer
// that rebuilds a live store from such a view, re-deriving every redundant
// index (field→component map, per-component position maps, per-relation
// uncertainty lists) and re-checking every invariant — a corrupt or
// hand-crafted state errors out instead of producing a store that fails
// later, deep inside an operator.

// RelState is the flat form of one template relation: just the name, the
// attribute names and the column-major template values (Placeholder marks
// uncertain fields). Everything else about a relation is derived.
type RelState struct {
	Name  string
	Attrs []string
	Cols  [][]int32
}

// CompState is the flat form of one component: its id, field list and local
// worlds. The field→column index is derived from the field order.
type CompState struct {
	ID     int32
	Fields []FieldID
	Rows   []CompRow
}

// StoreState is the flat, exported form of a store, the unit of
// serialization. Rels is indexed by relation id — dropped relations leave
// nil holes, which must be preserved because components reference relations
// by id. Comps is sorted by component id, so serializations of the same
// state are byte-identical.
//
// The slices of an exported state are shared with the live store; treat
// them as read-only.
type StoreState struct {
	Rels       []*RelState
	Comps      []*CompState
	NextCID    int32
	ScratchSeq int64
}

// ExportState flattens the snapshot into a StoreState. The returned state
// shares the snapshot's column and row storage (read-only); it stays valid
// as long as the snapshot does. Everything a snapshot file contains is
// derived from this state, so its layout must be a pure function of the
// store's logical content — byte-identical re-saves depend on it.
//
//maybms:deterministic snapshot bytes and shard fingerprints are derived from this state
func (sn *Snapshot) ExportState() *StoreState {
	st := &StoreState{Rels: make([]*RelState, len(sn.rels))}
	for i, r := range sn.rels {
		if r == nil {
			continue
		}
		st.Rels[i] = &RelState{Name: r.Name, Attrs: r.Attrs, Cols: r.Cols}
	}
	ids := make([]int32, 0, len(sn.comps))
	for id := range sn.comps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	st.Comps = make([]*CompState, 0, len(ids))
	for _, id := range ids {
		c := sn.comps[id]
		st.Comps = append(st.Comps, &CompState{ID: c.ID, Fields: c.Fields, Rows: c.Rows})
	}
	// The component and scratch sequences live on the store, not the
	// snapshot; both only ever grow, so reading the current value keeps the
	// restored store's id space ahead of everything the snapshot contains.
	sn.store.mu.Lock()
	st.NextCID = sn.store.nextCID
	st.ScratchSeq = sn.store.scratchSeq
	sn.store.mu.Unlock()
	return st
}

// ExportState flattens the store's current state (via a snapshot).
func (s *Store) ExportState() *StoreState { return s.Snapshot().ExportState() }

// ImportState rebuilds a live store from a flat state: relations and
// components are installed, the derived indexes (field→component, position
// maps, uncertainty lists) are reconstructed, and the full invariant set is
// re-validated. The store takes ownership of the state's slices. Any
// inconsistency — dangling field references, duplicate names or ids,
// ragged columns, probabilities that do not sum to one — is an error, so a
// corrupt serialization can never silently become a live store.
func ImportState(st *StoreState) (*Store, error) {
	s := NewStore()
	if st.NextCID < 0 || st.ScratchSeq < 0 {
		return nil, fmt.Errorf("engine: import: negative sequence counters")
	}
	s.nextCID = st.NextCID
	s.scratchSeq = st.ScratchSeq
	s.rels = make([]*Relation, len(st.Rels))
	for i, rs := range st.Rels {
		if rs == nil {
			continue
		}
		if rs.Name == "" {
			return nil, fmt.Errorf("engine: import: relation %d has an empty name", i)
		}
		if _, dup := s.relID[rs.Name]; dup {
			return nil, fmt.Errorf("engine: import: duplicate relation name %q", rs.Name)
		}
		if len(rs.Cols) != len(rs.Attrs) {
			return nil, fmt.Errorf("engine: import: relation %q has %d columns for %d attributes", rs.Name, len(rs.Cols), len(rs.Attrs))
		}
		seen := make(map[string]bool, len(rs.Attrs))
		for _, a := range rs.Attrs {
			if a == "" || seen[a] {
				return nil, fmt.Errorf("engine: import: relation %q has an empty or duplicate attribute", rs.Name)
			}
			seen[a] = true
		}
		r := &Relation{
			id:        int32(i),
			Name:      rs.Name,
			Attrs:     rs.Attrs,
			Cols:      rs.Cols,
			uncertain: make(map[int32][]uint16),
		}
		n := -1
		for a, col := range rs.Cols {
			if n < 0 {
				n = len(col)
			}
			if len(col) != n {
				return nil, fmt.Errorf("engine: import: relation %q column %s has %d rows, want %d", rs.Name, rs.Attrs[a], len(col), n)
			}
			for row, v := range col {
				if v < Placeholder {
					return nil, fmt.Errorf("engine: import: relation %q has invalid value %d", rs.Name, v)
				}
				if v == Placeholder {
					r.uncertain[int32(row)] = append(r.uncertain[int32(row)], uint16(a))
				}
			}
		}
		s.relID[rs.Name] = r.id
		s.rels[i] = r
	}
	for _, cs := range st.Comps {
		if cs == nil {
			return nil, fmt.Errorf("engine: import: nil component")
		}
		if cs.ID <= 0 || cs.ID > st.NextCID {
			return nil, fmt.Errorf("engine: import: component id %d outside sequence bound %d", cs.ID, st.NextCID)
		}
		if _, dup := s.comps[cs.ID]; dup {
			return nil, fmt.Errorf("engine: import: duplicate component id %d", cs.ID)
		}
		if len(cs.Fields) == 0 || len(cs.Fields) > MaxCompFields {
			return nil, fmt.Errorf("engine: import: component %d has %d fields", cs.ID, len(cs.Fields))
		}
		if len(cs.Rows) == 0 {
			return nil, fmt.Errorf("engine: import: component %d has no local worlds", cs.ID)
		}
		c := &Component{ID: cs.ID, Fields: cs.Fields, Rows: cs.Rows, pos: make(map[FieldID]int, len(cs.Fields))}
		for i, f := range cs.Fields {
			if _, dup := c.pos[f]; dup {
				return nil, fmt.Errorf("engine: import: component %d lists field %v twice", cs.ID, f)
			}
			c.pos[f] = i
			if _, dup := s.fieldComp[f]; dup {
				return nil, fmt.Errorf("engine: import: field %v belongs to two components", f)
			}
			s.fieldComp[f] = cs.ID
		}
		s.comps[cs.ID] = c
	}
	// Validate re-checks the cross-structure invariants the loops above
	// cannot see locally: every placeholder field backed by a component,
	// every component field pointing at a placeholder cell of a live
	// relation, row arities, probability mass. The tolerance is looser than
	// the test-suite's 1e-9 because serialized probabilities are bit-exact
	// copies of values that were themselves only renormalized to ~1.
	if err := s.Validate(1e-6); err != nil {
		return nil, fmt.Errorf("engine: import: %w", err)
	}
	return s, nil
}

// InstallRelation installs a bulk-loaded relation — a flat RelState plus the
// components backing its placeholder fields — into a live store. Unlike
// ImportState, which builds a fresh store, this grafts onto an existing
// catalog: the relation gets the next free id, component ids are remapped
// past the store's sequence, and every field reference is rewritten to the
// new relation id (the components must reference only the installed
// relation). The store takes ownership of the state's slices. All local
// invariants are checked before anything is registered, so a failed install
// leaves the store untouched.
//
//maybms:unguarded recovery/ingest-path validation under the store lock; no query guard exists yet
func (s *Store) InstallRelation(rs *RelState, comps []*CompState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.detachLocked()
	if rs == nil || rs.Name == "" {
		return fmt.Errorf("engine: install: empty relation")
	}
	if _, dup := s.relID[rs.Name]; dup {
		return fmt.Errorf("engine: relation %q already exists", rs.Name)
	}
	if len(rs.Cols) != len(rs.Attrs) {
		return fmt.Errorf("engine: install: relation %q has %d columns for %d attributes", rs.Name, len(rs.Cols), len(rs.Attrs))
	}
	relID := int32(len(s.rels))
	r := &Relation{
		id:        relID,
		Name:      rs.Name,
		Attrs:     rs.Attrs,
		Cols:      rs.Cols,
		uncertain: make(map[int32][]uint16),
	}
	n := -1
	for a, col := range rs.Cols {
		if n < 0 {
			n = len(col)
		}
		if len(col) != n {
			return fmt.Errorf("engine: install: relation %q column %s has %d rows, want %d", rs.Name, rs.Attrs[a], len(col), n)
		}
		for row, v := range col {
			if v < Placeholder {
				return fmt.Errorf("engine: install: relation %q has invalid value %d", rs.Name, v)
			}
			if v == Placeholder {
				r.uncertain[int32(row)] = append(r.uncertain[int32(row)], uint16(a))
			}
		}
	}
	// Check the components against the relation (and each other) before
	// registering anything: the checks mirror ImportState's, scoped to the
	// installed relation. Field Rel values are rewritten to the new id, so a
	// loader built against a single-relation store (Rel 0) installs cleanly.
	placeholders := 0
	for _, attrs := range r.uncertain {
		placeholders += len(attrs)
	}
	covered := make(map[FieldID]bool, placeholders)
	built := make([]*Component, 0, len(comps))
	for i, cs := range comps {
		if cs == nil {
			return fmt.Errorf("engine: install: nil component")
		}
		if len(cs.Fields) == 0 || len(cs.Fields) > MaxCompFields {
			return fmt.Errorf("engine: install: component %d has %d fields", cs.ID, len(cs.Fields))
		}
		if len(cs.Rows) == 0 {
			return fmt.Errorf("engine: install: component %d has no local worlds", cs.ID)
		}
		id := s.nextCID + int32(i) + 1
		c := &Component{ID: id, Fields: make([]FieldID, len(cs.Fields)), Rows: cs.Rows, pos: make(map[FieldID]int, len(cs.Fields))}
		var mass float64
		for _, row := range cs.Rows {
			if len(row.Vals) != len(cs.Fields) {
				return fmt.Errorf("engine: install: component %d row has %d values for %d fields", cs.ID, len(row.Vals), len(cs.Fields))
			}
			mass += row.P
		}
		if mass < 1-1e-6 || mass > 1+1e-6 {
			return fmt.Errorf("engine: install: component %d probabilities sum to %g", cs.ID, mass)
		}
		for j, f := range cs.Fields {
			f.Rel = relID
			if f.Row < 0 || int(f.Row) >= n || int(f.Attr) >= len(rs.Attrs) {
				return fmt.Errorf("engine: install: component %d field %v outside relation %q", cs.ID, f, rs.Name)
			}
			if rs.Cols[f.Attr][f.Row] != Placeholder {
				return fmt.Errorf("engine: install: component %d field %v is not a placeholder cell", cs.ID, f)
			}
			if covered[f] {
				return fmt.Errorf("engine: install: field %v belongs to two components", f)
			}
			covered[f] = true
			c.Fields[j] = f
			c.pos[f] = j
		}
		built = append(built, c)
	}
	if len(covered) != placeholders {
		return fmt.Errorf("engine: install: relation %q has %d placeholder fields but %d component fields", rs.Name, placeholders, len(covered))
	}
	s.relID[rs.Name] = relID
	s.rels = append(s.rels, r)
	for _, c := range built {
		s.comps[c.ID] = c
		for _, f := range c.Fields {
			s.fieldComp[f] = c.ID
		}
	}
	s.nextCID += int32(len(built))
	return nil
}

package engine

import (
	"fmt"
	"sync"
	"testing"
)

// poolWorkload runs one query-shaped workload (select + project + native
// confidence) on the given arena and renders the result deterministically.
// It returns rather than fails on error so worker goroutines can report
// through a channel (t.Fatal must not run off the test goroutine).
func poolWorkload(ar *Arena, rel string) (string, error) {
	r := ar.Rel(rel)
	if _, err := ar.Select("sel", rel, Gt(r.Attrs[0], 0)); err != nil {
		return "", err
	}
	if _, err := ar.Project("proj", "sel", r.Attrs[0], r.Attrs[1]); err != nil {
		return "", err
	}
	tcs, err := ar.PossibleP("proj")
	if err != nil {
		return "", err
	}
	st := ar.Stats("proj")
	out := fmt.Sprintf("stats=%+v\n", st)
	for _, tc := range tcs {
		out += fmt.Sprintf("%v %.17g\n", tc.Tuple, tc.Conf)
	}
	return out, nil
}

// TestArenaPoolByteIdentical checks that pooled arenas (Acquire/Release
// cycles reusing scratch) and unpooled arenas (fresh NewArena per run)
// produce byte-identical results, including while many goroutines churn the
// pool concurrently — run under -race in CI.
func TestArenaPoolByteIdentical(t *testing.T) {
	s := randomConfStore(t, 7)
	rel := s.Relations()[0]
	snap := s.Snapshot()
	want, err := poolWorkload(NewArena(snap), rel)
	if err != nil {
		t.Fatal(err)
	}

	// Sequential reuse: the same pooled arena object serves many runs.
	for i := 0; i < 10; i++ {
		ar := AcquireArena(snap)
		got, err := poolWorkload(ar, rel)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("pooled run %d diverged:\n%s\nwant:\n%s", i, got, want)
		}
		ReleaseArena(ar)
	}

	// Concurrent churn: pooled and unpooled runs race over one snapshot.
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				var ar *Arena
				if (w+i)%2 == 0 {
					ar = AcquireArena(snap)
				} else {
					ar = NewArena(snap)
				}
				got, err := poolWorkload(ar, rel)
				if (w+i)%2 == 0 {
					ReleaseArena(ar)
				}
				if err != nil {
					errs <- fmt.Sprintf("worker %d run %d: %v", w, i, err)
					return
				}
				if got != want {
					errs <- fmt.Sprintf("worker %d run %d diverged", w, i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestArenaResetAfterCommit checks a committed (spent) arena is safe to
// release and reuse: Reset drops the references Commit left behind.
func TestArenaResetAfterCommit(t *testing.T) {
	s := randomConfStore(t, 11)
	rel := s.Relations()[0]
	ar := AcquireArena(s.Snapshot())
	r := ar.Rel(rel)
	if _, err := ar.Select("committed_sel", rel, Gt(r.Attrs[0], 0)); err != nil {
		t.Fatal(err)
	}
	if err := ar.Commit(); err != nil {
		t.Fatal(err)
	}
	ReleaseArena(ar)
	if s.Rel("committed_sel") == nil {
		t.Fatal("committed relation missing from store")
	}
	// The next acquisition may hand back the same object; it must behave
	// like a fresh arena over the new snapshot.
	ar2 := AcquireArena(s.Snapshot())
	defer ReleaseArena(ar2)
	if ar2.Rel("committed_sel") == nil {
		t.Fatal("reset arena does not see the committed catalog")
	}
	if len(ar2.rels) != 0 || len(ar2.relID) != 0 || len(ar2.comps) != 0 {
		t.Fatal("reset arena carries stale session state")
	}
	if _, err := ar2.Select("sel2", "committed_sel", Gt(r.Attrs[0], 0)); err != nil {
		t.Fatal(err)
	}
}

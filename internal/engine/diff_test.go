package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"maybms/internal/relation"
	"maybms/internal/worlds"
)

// These tests differential-test the native difference operator (diff.go)
// against the per-world reference: worlds.Difference evaluated over the
// enumerated world-set, and relation.Difference applied world by world.
// The generator deliberately produces the structures difference must reason
// about at tuple level: duplicate templates across the two relations (so
// certain-certain deletions fire), or-sets over a tiny domain (so uncertain
// matches are common), multi-slot and cross-relation components (so the
// composed presence masks ride on shared components), and absent fields.

// randomDiffStore builds a seeded store with two same-schema relations L
// and R whose tuples collide often.
func randomDiffStore(t *testing.T, seed int64) *Store {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := NewStore()
	attrs := []string{"A0", "A1"}
	type field struct {
		rel  string
		row  int
		attr string
	}
	var uncertain []field
	nrows := map[string]int{}
	for _, name := range []string{"L", "R"} {
		n := 2 + rng.Intn(3)
		nrows[name] = n
		cols := make([][]int32, len(attrs))
		for a := range cols {
			cols[a] = make([]int32, n)
			for i := range cols[a] {
				cols[a][i] = int32(rng.Intn(3))
			}
		}
		if _, err := s.AddRelation(name, attrs, cols); err != nil {
			t.Fatal(err)
		}
	}
	// Copy some L templates into R verbatim so exact duplicates exist.
	lRel, rRel := s.Rel("L"), s.Rel("R")
	for j := 0; j < nrows["R"]; j++ {
		if rng.Float64() < 0.4 {
			i := rng.Intn(nrows["L"])
			for a := range attrs {
				rRel.Cols[a][j] = lRel.Cols[a][i]
			}
		}
	}
	for _, name := range []string{"L", "R"} {
		for i := 0; i < nrows[name]; i++ {
			for _, at := range attrs {
				if rng.Float64() >= 0.35 {
					continue
				}
				k := 2 + rng.Intn(2)
				vals := make([]int32, 0, k)
				probs := make([]float64, 0, k)
				seen := map[int32]bool{}
				total := 0.0
				for len(vals) < k {
					v := int32(rng.Intn(3))
					if seen[v] {
						continue
					}
					seen[v] = true
					vals = append(vals, v)
					p := 0.1 + rng.Float64()
					probs = append(probs, p)
					total += p
				}
				for j := range probs {
					probs[j] /= total
				}
				if err := s.SetUncertain(name, i, at, vals, probs); err != nil {
					t.Fatal(err)
				}
				uncertain = append(uncertain, field{rel: name, row: i, attr: at})
			}
		}
	}
	// Merge random component pairs: same-relation pairs produce multi-slot
	// components, cross-relation pairs correlate L with R — the case where
	// marking a left slot ⊥ must respect the joint distribution.
	fid := func(f field) FieldID {
		r := s.Rel(f.rel)
		ai, err := r.AttrIndex(f.attr)
		if err != nil {
			t.Fatal(err)
		}
		return FieldID{Rel: r.id, Row: int32(f.row), Attr: ai}
	}
	for m := 0; m < 2 && len(uncertain) >= 2; m++ {
		a := uncertain[rng.Intn(len(uncertain))]
		b := uncertain[rng.Intn(len(uncertain))]
		if a == b {
			continue
		}
		if _, err := s.mergeComps(fid(a), fid(b)); err != nil {
			t.Fatal(err)
		}
	}
	// Mark some fields absent in some local world (⊥: worlds of different
	// sizes — an absent right tuple must not delete anything).
	for _, f := range uncertain {
		if rng.Float64() < 0.4 {
			c := s.ComponentOf(fid(f))
			col := c.Pos(fid(f))
			w := rng.Intn(len(c.Rows))
			c.Rows[w].Absent = c.Rows[w].Absent.Set(col)
		}
	}
	if err := s.Validate(1e-9); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return s
}

// enumerate returns the full world-set of the store.
func enumerate(t *testing.T, s *Store, label string) *worlds.WorldSet {
	t.Helper()
	w, err := s.ToWSD()
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	ws, err := w.Rep(0)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	return ws
}

func TestDifferenceMatchesWorldEnumeration(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		s := randomDiffStore(t, seed)
		label := fmt.Sprintf("seed %d", seed)
		ws := enumerate(t, s, label)

		// Reference 1: worlds.Difference evaluated in every world.
		want, err := worlds.EvalWorldSet(worlds.Difference{L: worlds.Base{Rel: "L"}, R: worlds.Base{Rel: "R"}}, ws, "res")
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		// Reference 2: relation.Difference applied world by world agrees
		// with the world-set evaluation (tuple for tuple).
		for i, w := range ws.Worlds {
			d, err := relation.Difference(w.Rel("L"), w.Rel("R"), "res")
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if !d.Equal(want.Worlds[i].Rel("res")) {
				t.Fatalf("%s: world %d: worlds.Difference and relation.Difference disagree", label, i)
			}
		}

		// Native path: Arena.Difference over a snapshot, enumerated scoped.
		ar := NewArena(s.Snapshot())
		if _, err := ar.Difference("res", "L", "R"); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		got, err := ar.RepRelation("res", 1<<20)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if !got.Equal(want, 1e-9) {
			t.Fatalf("%s: Arena.Difference diverges from per-world difference (%d vs %d distinct worlds)",
				label, len(got.Canonical()), len(want.Canonical()))
		}

		// Confidence composes on top: the native confidence table of the
		// difference matches tuple confidences counted over the enumeration.
		conf := make(map[string]float64)
		for i, w := range want.Worlds {
			for _, tup := range w.Rel("res").Tuples() {
				conf[tup.Key()] += want.Probs[i]
			}
		}
		native, err := ar.PossibleP("res")
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if len(native) != len(conf) {
			t.Fatalf("%s: native %d possible tuples, enumeration %d", label, len(native), len(conf))
		}
		for _, tc := range native {
			want, ok := conf[nativeToRelation(tc.Tuple).Key()]
			if !ok {
				t.Fatalf("%s: native tuple %v in no enumerated world", label, tc.Tuple)
			}
			if d := tc.Conf - want; d > 1e-9 || d < -1e-9 {
				t.Fatalf("%s: tuple %v: native conf %g, enumeration %g", label, tc.Tuple, tc.Conf, want)
			}
		}
	}
}

// TestDifferenceOnArenaResults checks the operator on the surface the query
// engine uses: difference over selection results inside one arena, whose
// components extend shared base components — the SQL EXCEPT shape.
func TestDifferenceOnArenaResults(t *testing.T) {
	for seed := int64(100); seed < 130; seed++ {
		s := randomDiffStore(t, seed)
		label := fmt.Sprintf("seed %d", seed)
		ws := enumerate(t, s, label)
		pred := Gt("A0", 0)
		q := worlds.Difference{
			L: worlds.Base{Rel: "L"},
			R: worlds.Select{Q: worlds.Base{Rel: "R"}, Pred: relation.AttrConst{Attr: "A0", Theta: relation.GT, Const: relation.Int(0)}},
		}
		want, err := worlds.EvalWorldSet(q, ws, "res")
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		ar := NewArena(s.Snapshot())
		if _, err := ar.Select("sel", "R", pred); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if _, err := ar.Difference("res", "L", "sel"); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		got, err := ar.RepRelation("res", 1<<20)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if !got.Equal(want, 1e-9) {
			t.Fatalf("%s: difference over arena results diverges from per-world evaluation", label)
		}
	}
}

// TestDifferenceSelfEmpty checks R − R: empty in every world, whatever the
// uncertainty structure.
func TestDifferenceSelfEmpty(t *testing.T) {
	for seed := int64(200); seed < 220; seed++ {
		s := randomDiffStore(t, seed)
		ar := NewArena(s.Snapshot())
		if _, err := ar.Difference("res", "R", "R"); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := ar.RepRelation("res", 1<<20)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, w := range got.Worlds {
			if n := w.Rel("res").Size(); n != 0 {
				t.Fatalf("seed %d: world %d of R − R holds %d tuples, want 0", seed, i, n)
			}
		}
	}
}

// TestDifferenceCommit checks the one-shot Store wrapper: the result commits
// into the store and the store stays valid (composed components replaced
// their origins consistently).
func TestDifferenceCommit(t *testing.T) {
	for seed := int64(300); seed < 310; seed++ {
		s := randomDiffStore(t, seed)
		want, err := worlds.EvalWorldSet(worlds.Difference{L: worlds.Base{Rel: "L"}, R: worlds.Base{Rel: "R"}},
			enumerate(t, s, fmt.Sprintf("seed %d", seed)), "res")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := s.Difference("res", "L", "R"); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := s.Validate(1e-9); err != nil {
			t.Fatalf("seed %d: store invalid after committed difference: %v", seed, err)
		}
		got, err := s.RepRelation("res", 1<<20)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !got.Equal(want, 1e-9) {
			t.Fatalf("seed %d: committed difference diverges from per-world evaluation", seed)
		}
	}
}

// TestDifferenceSchemaErrors sweeps the argument checks.
func TestDifferenceSchemaErrors(t *testing.T) {
	s := NewStore()
	if _, err := s.AddRelation("L", []string{"A", "B"}, [][]int32{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddRelation("W", []string{"A"}, [][]int32{{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddRelation("X", []string{"A", "C"}, [][]int32{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	ar := NewArena(s.Snapshot())
	if _, err := ar.Difference("res", "L", "Nope"); err == nil {
		t.Fatal("difference with unknown relation succeeded")
	}
	if _, err := ar.Difference("res", "L", "W"); err == nil {
		t.Fatal("difference with arity mismatch succeeded")
	}
	if _, err := ar.Difference("res", "L", "X"); err == nil {
		t.Fatal("difference with attribute mismatch succeeded")
	}
	if _, err := ar.Difference("L", "L", "L"); err == nil {
		t.Fatal("difference onto an existing name succeeded")
	}
}

package engine

// Bitset is a growable bit vector used for the per-(field, local world)
// absence marks of component rows. The zero value is an empty set.
type Bitset []uint64

// Get reports whether bit i is set.
func (b Bitset) Get(i int) bool {
	w := i >> 6
	if w >= len(b) {
		return false
	}
	return b[w]&(1<<uint(i&63)) != 0
}

// Set sets bit i, growing the set as needed, and returns the (possibly
// reallocated) bitset.
func (b Bitset) Set(i int) Bitset {
	w := i >> 6
	for w >= len(b) {
		b = append(b, 0)
	}
	b[w] |= 1 << uint(i&63)
	return b
}

// Clear clears bit i.
func (b Bitset) Clear(i int) {
	w := i >> 6
	if w < len(b) {
		b[w] &^= 1 << uint(i&63)
	}
}

// Assign sets bit i to v and returns the bitset.
func (b Bitset) Assign(i int, v bool) Bitset {
	if v {
		return b.Set(i)
	}
	b.Clear(i)
	return b
}

// Clone copies the bitset.
func (b Bitset) Clone() Bitset {
	if len(b) == 0 {
		return nil
	}
	out := make(Bitset, len(b))
	copy(out, b)
	return out
}

// Any reports whether any bit is set.
func (b Bitset) Any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// OrShifted ors the first n bits of src into b starting at offset shift and
// returns the result (used when composing components).
func (b Bitset) OrShifted(src Bitset, n, shift int) Bitset {
	for i := 0; i < n; i++ {
		if src.Get(i) {
			b = b.Set(shift + i)
		}
	}
	return b
}

package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"maybms/internal/confidence"
	"maybms/internal/relation"
)

// These tests differential-test the native confidence path (conf.go) against
// the WSD bridge plus internal/confidence — the reference oracle — and,
// where the world count stays small, against explicit world enumeration.

// confEps tolerates the floating-point combination-order differences between
// the native path and the oracle (marginalize-then-compose vs
// compose-then-marginalize sums masses in different orders).
const confEps = 1e-12

// randomConfStore builds a seeded random store exercising the tuple-level
// machinery: several relations, or-sets with non-uniform probabilities,
// multi-slot components (merged across rows), cross-relation components
// (merged across relations, forcing marginalization), and absent fields (⊥).
func randomConfStore(t *testing.T, seed int64) *Store {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := NewStore()
	nrels := 1 + rng.Intn(2)
	type field struct {
		rel  string
		row  int
		attr string
	}
	var uncertain []field
	for ri := 0; ri < nrels; ri++ {
		name := fmt.Sprintf("T%d", ri)
		nattrs := 2 + rng.Intn(2)
		nrows := 2 + rng.Intn(4)
		attrs := make([]string, nattrs)
		cols := make([][]int32, nattrs)
		for a := range attrs {
			attrs[a] = fmt.Sprintf("A%d", a)
			cols[a] = make([]int32, nrows)
			for i := range cols[a] {
				cols[a][i] = int32(rng.Intn(4))
			}
		}
		if _, err := s.AddRelation(name, attrs, cols); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nrows; i++ {
			for a := 0; a < nattrs; a++ {
				if rng.Float64() < 0.4 {
					k := 2 + rng.Intn(2)
					vals := make([]int32, k)
					probs := make([]float64, k)
					total := 0.0
					for j := range vals {
						vals[j] = int32(rng.Intn(4))
						probs[j] = 0.1 + rng.Float64()
						total += probs[j]
					}
					for j := range probs {
						probs[j] /= total
					}
					if err := s.SetUncertain(name, i, attrs[a], vals, probs); err != nil {
						t.Fatal(err)
					}
					uncertain = append(uncertain, field{rel: name, row: i, attr: attrs[a]})
				}
			}
		}
	}
	// Merge a few random component pairs: same-relation pairs produce
	// multi-slot components, cross-relation pairs force marginalization.
	fid := func(f field) FieldID {
		r := s.Rel(f.rel)
		ai, err := r.AttrIndex(f.attr)
		if err != nil {
			t.Fatal(err)
		}
		return FieldID{Rel: r.id, Row: int32(f.row), Attr: ai}
	}
	for m := 0; m < 3 && len(uncertain) >= 2; m++ {
		a := uncertain[rng.Intn(len(uncertain))]
		b := uncertain[rng.Intn(len(uncertain))]
		if a == b {
			continue
		}
		if _, err := s.mergeComps(fid(a), fid(b)); err != nil {
			t.Fatal(err)
		}
	}
	// Mark some fields absent in some local worlds (⊥: the tuple is absent
	// from worlds choosing those local worlds).
	for _, f := range uncertain {
		if rng.Float64() < 0.5 {
			c := s.ComponentOf(fid(f))
			col := c.Pos(fid(f))
			w := rng.Intn(len(c.Rows))
			c.Rows[w].Absent = c.Rows[w].Absent.Set(col)
		}
	}
	if err := s.Validate(1e-9); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return s
}

// nativeToRelation converts a native tuple to the oracle's representation.
func nativeToRelation(t []int32) relation.Tuple {
	out := make(relation.Tuple, len(t))
	for i, v := range t {
		out[i] = relation.Int(int64(v))
	}
	return out
}

func diffPossibleP(t *testing.T, label string, native []TupleConf, oracle []confidence.TupleConf) {
	t.Helper()
	if len(native) != len(oracle) {
		t.Fatalf("%s: native %d tuples, oracle %d", label, len(native), len(oracle))
	}
	for i := range native {
		nt := nativeToRelation(native[i].Tuple)
		if relation.CompareTuples(nt, oracle[i].Tuple) != 0 {
			t.Fatalf("%s: tuple %d: native %v, oracle %v", label, i, nt, oracle[i].Tuple)
		}
		if d := native[i].Conf - oracle[i].Conf; d > confEps || d < -confEps {
			t.Fatalf("%s: tuple %v: native conf %g, oracle %g", label, nt, native[i].Conf, oracle[i].Conf)
		}
	}
}

func TestNativeConfidenceMatchesOracleRandom(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		s := randomConfStore(t, seed)
		for _, rel := range s.Relations() {
			label := fmt.Sprintf("seed %d rel %s", seed, rel)
			w, err := s.ToWSDOf(rel)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			oracle, err := confidence.PossibleP(w, rel)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			native, err := s.PossibleP(rel)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			diffPossibleP(t, label, native, oracle)

			// Possible is the confidence table minus the confidences.
			poss, err := s.Possible(rel)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if len(poss) != len(native) {
				t.Fatalf("%s: Possible %d tuples, PossibleP %d", label, len(poss), len(native))
			}
			for i := range poss {
				if CompareTuples(poss[i], native[i].Tuple) != 0 {
					t.Fatalf("%s: Possible[%d] = %v, want %v", label, i, poss[i], native[i].Tuple)
				}
			}

			// Conf and Certain per possible tuple, plus one absent tuple.
			for _, tc := range native {
				got, err := s.Conf(rel, tc.Tuple)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				want, err := confidence.Conf(w, rel, nativeToRelation(tc.Tuple))
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if d := got - want; d > confEps || d < -confEps {
					t.Fatalf("%s: Conf(%v) = %g, oracle %g", label, tc.Tuple, got, want)
				}
				gotCert, err := s.Certain(rel, tc.Tuple, 1e-9)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				wantCert, err := confidence.Certain(w, rel, nativeToRelation(tc.Tuple), 1e-9)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if gotCert != wantCert {
					t.Fatalf("%s: Certain(%v) = %v, oracle %v", label, tc.Tuple, gotCert, wantCert)
				}
			}
			r := s.Rel(rel)
			missing := make([]int32, len(r.Attrs))
			for i := range missing {
				missing[i] = 99
			}
			got, err := s.Conf(rel, missing)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if got != 0 {
				t.Fatalf("%s: Conf(absent tuple) = %g, want 0", label, got)
			}
		}
	}
}

// TestNativeConfidenceMatchesWorldEnumeration cross-checks the native
// confidence table against explicit world enumeration: the confidence of a
// tuple is the summed probability of the worlds containing it.
func TestNativeConfidenceMatchesWorldEnumeration(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		s := randomConfStore(t, seed)
		for _, rel := range s.Relations() {
			label := fmt.Sprintf("seed %d rel %s", seed, rel)
			ws, err := s.RepRelation(rel, 1<<16)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			conf := make(map[string]float64)
			for i, w := range ws.Worlds {
				for _, tup := range w.Rel(rel).Tuples() {
					conf[tup.Key()] += ws.Probs[i]
				}
			}
			native, err := s.PossibleP(rel)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if len(native) != len(conf) {
				t.Fatalf("%s: native %d tuples, enumeration %d", label, len(native), len(conf))
			}
			for _, tc := range native {
				want, ok := conf[nativeToRelation(tc.Tuple).Key()]
				if !ok {
					t.Fatalf("%s: native tuple %v not in any enumerated world", label, tc.Tuple)
				}
				if d := tc.Conf - want; d > 1e-9 || d < -1e-9 {
					t.Fatalf("%s: tuple %v: native conf %g, enumeration %g", label, tc.Tuple, tc.Conf, want)
				}
			}
		}
	}
}

// TestNativeConfidenceOnArenaResults checks the native path on the surface
// the query engine actually uses: operator results in an arena, whose
// components extend and compose base components of the snapshot (producing
// absence marks and cross-relation sharing organically).
func TestNativeConfidenceOnArenaResults(t *testing.T) {
	for seed := int64(200); seed < 220; seed++ {
		s := randomConfStore(t, seed)
		rel := s.Relations()[0]
		r := s.Rel(rel)
		ar := NewArena(s.Snapshot())
		if _, err := ar.Select("sel", rel, Gt(r.Attrs[0], 0)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := ar.Project("proj", "sel", r.Attrs[0], r.Attrs[1]); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, res := range []string{"sel", "proj"} {
			label := fmt.Sprintf("seed %d result %s", seed, res)
			native, err := ar.PossibleP(res)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if ar.Rel(res).NumRows() == 0 {
				// The oracle cannot express an empty probabilistic result (a
				// WSD with no components reports non-probabilistic); the
				// native path returns the empty table.
				if len(native) != 0 {
					t.Fatalf("%s: empty result has %d possible tuples", label, len(native))
				}
				continue
			}
			w, err := ar.ToWSDOf(res)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			oracle, err := confidence.PossibleP(w, res)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			diffPossibleP(t, label, native, oracle)
		}
	}
}

func TestCompareTuples(t *testing.T) {
	cases := []struct {
		a, b []int32
		want int
	}{
		{nil, nil, 0},
		{[]int32{1}, []int32{1}, 0},
		{[]int32{1}, []int32{2}, -1},
		{[]int32{2}, []int32{1}, 1},
		{[]int32{1, 2}, []int32{1, 3}, -1},
		{[]int32{1}, []int32{1, 0}, -1},
		{[]int32{1, 0}, []int32{1}, 1},
	}
	for _, c := range cases {
		if got := CompareTuples(c.a, c.b); got != c.want {
			t.Errorf("CompareTuples(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

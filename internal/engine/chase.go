package engine

import (
	"errors"
	"fmt"
	"sort"

	"maybms/internal/relation"
)

// ErrInconsistent is returned when no world satisfies the dependencies.
var ErrInconsistent = errors.New("engine: world-set is inconsistent with the dependencies")

// Atom is the comparison Attr θ C of an equality-generating dependency.
type Atom struct {
	Attr  string
	Theta relation.Op
	C     int32
}

func (a Atom) String() string { return fmt.Sprintf("%s%s%d", a.Attr, a.Theta, a.C) }

// EGD is a single-tuple equality-generating dependency
// Premise₁ ∧ ... ∧ Premiseₘ ⇒ Conclusion (Section 8), the dependency class
// of the census cleaning constraints (Figure 25).
type EGD struct {
	Premise    []Atom
	Conclusion Atom
}

func (d EGD) String() string {
	out := ""
	for i, a := range d.Premise {
		if i > 0 {
			out += " ∧ "
		}
		out += a.String()
	}
	return out + " ⇒ " + d.Conclusion.String()
}

// HoldsRow reports whether the dependency holds for a fully certain row.
func (d EGD) HoldsRow(get func(attr string) (int32, error)) (bool, error) {
	for _, a := range d.Premise {
		v, err := get(a.Attr)
		if err != nil {
			return false, err
		}
		if !applyOp(a.Theta, v, a.C) {
			return true, nil
		}
	}
	v, err := get(d.Conclusion.Attr)
	if err != nil {
		return false, err
	}
	return applyOp(d.Conclusion.Theta, v, d.Conclusion.C), nil
}

// ChaseEGDs enforces the dependencies on relation rel in place (the chase of
// Figure 24 restricted to single-tuple EGDs, on the uniform encoding):
// local worlds in which a present tuple violates a dependency are removed
// and the surviving probabilities renormalized. A certain violating tuple —
// or a component running empty — makes the world-set inconsistent.
//
// One pass over dependencies and rows suffices: removing local worlds can
// not introduce new violations (Section 8).
func (s *Store) ChaseEGDs(rel string, deps []EGD) error {
	return s.ChaseEGDsOpt(rel, deps, ChaseOptions{})
}

// ChaseEGDsRefined is the chase with the full Section 8 refinement: only
// components of uncertain fields are composed; certain fields keep their
// template entries and the violation test reads them from the template.
// Same semantics as ChaseEGDs, smaller decompositions, fewer compositions.
func (s *Store) ChaseEGDsRefined(rel string, deps []EGD) error {
	return s.ChaseEGDsOpt(rel, deps, ChaseOptions{Refined: true})
}

// ChaseOptions tune the chase implementation without changing its
// semantics on clean-template inputs.
type ChaseOptions struct {
	// Refined applies the full Section 8 refinement (compose only the
	// components of uncertain fields).
	Refined bool
	// AssumeClean skips the certain-tuple violation scan and visits only
	// rows carrying placeholders, making the chase cost proportional to the
	// number of or-sets rather than the relation size — the paper's setting,
	// where the underlying census data satisfies the dependencies. If a
	// certain tuple does violate a dependency, AssumeClean silently keeps
	// it; use the default full scan to detect global inconsistency.
	AssumeClean bool
}

// ChaseEGDsOpt is ChaseEGDs with explicit options. The chase rewrites
// components in place; like SetUncertain it is a load-time operation and
// must not run while snapshots of this store are live.
func (s *Store) ChaseEGDsOpt(rel string, deps []EGD, opt ChaseOptions) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.detachLocked()
	return s.chaseEGDs(rel, deps, opt)
}

// fieldHasAbsence reports whether field f is absent in some local world.
func (s *Store) fieldHasAbsence(f FieldID) bool {
	c := s.ComponentOf(f)
	if c == nil {
		return false
	}
	return compFieldHasAbsence(c, f)
}

// fieldValues returns the present values of an uncertain field.
func (s *Store) fieldValues(f FieldID) []int32 {
	c := s.ComponentOf(f)
	if c == nil {
		return nil
	}
	return compFieldValues(c, f)
}

func (s *Store) chaseEGDs(rel string, deps []EGD, opt ChaseOptions) error {
	r := s.Rel(rel)
	if r == nil {
		return fmt.Errorf("engine: unknown relation %q", rel)
	}
	for _, d := range deps {
		idx := make(map[string]uint16, len(d.Premise)+1)
		add := func(attr string) error {
			ai, err := r.AttrIndex(attr)
			if err != nil {
				return err
			}
			idx[attr] = ai
			return nil
		}
		for _, a := range d.Premise {
			if err := add(a.Attr); err != nil {
				return err
			}
		}
		if err := add(d.Conclusion.Attr); err != nil {
			return err
		}
		if err := s.chaseOne(r, d, idx, opt); err != nil {
			return err
		}
	}
	return nil
}

//maybms:unguarded chase runs on the update path (INSERT repair) under the store lock, fail-fast bounded by MaxCompRows
func (s *Store) chaseOne(r *Relation, d EGD, idx map[string]uint16, opt ChaseOptions) error {
	rows := chaseRows(r, idx, opt)
	for _, row := range rows {
		i := int(row)
		// Partition the dependency's attributes into certain and uncertain.
		var uncFields []FieldID
		uncAttr := make(map[uint16]bool)
		for _, ai := range idx {
			if r.Cols[ai][i] == Placeholder {
				f := FieldID{Rel: r.id, Row: row, Attr: ai}
				if !uncAttr[ai] {
					uncAttr[ai] = true
					uncFields = append(uncFields, f)
				}
			}
		}
		if len(uncFields) == 0 {
			ok, err := d.HoldsRow(func(attr string) (int32, error) {
				return r.Cols[idx[attr]][i], nil
			})
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("%w: certain tuple %d violates %v", ErrInconsistent, i, d)
			}
			continue
		}
		// Cheap possibility check before composing (Section 8 refinement):
		// skip when some premise atom can never hold or the conclusion can
		// never fail.
		if !s.egdPossiblyViolated(r, row, d, idx) {
			continue
		}
		// Figure 24 composes the components of every attribute of the
		// dependency; certain fields enter as fresh single-value components.
		// (Figure 27's measurements imply this non-refined behaviour:
		// #comp>1 tracks ≈1% of the or-sets at every density, which only
		// composition with certain partners produces.)
		if !opt.Refined {
			for _, ai := range idx {
				if r.Cols[ai][i] != Placeholder {
					if err := s.materializeCertain(r, row, ai); err != nil {
						return err
					}
					f := FieldID{Rel: r.id, Row: row, Attr: ai}
					uncAttr[ai] = true
					uncFields = append(uncFields, f)
				}
			}
		}
		// Fields of this tuple that record absence must join the composed
		// component: a dependency holds vacuously for absent tuples.
		var presenceFields []FieldID
		for _, a := range r.uncertain[row] {
			if uncAttr[a] {
				continue
			}
			f := FieldID{Rel: r.id, Row: row, Attr: a}
			if s.fieldHasAbsence(f) {
				presenceFields = append(presenceFields, f)
			}
		}
		comp, err := s.mergeComps(append(append([]FieldID{}, uncFields...), presenceFields...)...)
		if err != nil {
			return err
		}
		cols := make(map[uint16]int, len(uncFields))
		for _, f := range uncFields {
			cols[f.Attr] = comp.Pos(f)
		}
		presenceCols := make([]int, 0, len(uncFields)+len(presenceFields))
		for _, c := range cols {
			presenceCols = append(presenceCols, c)
		}
		for _, f := range presenceFields {
			presenceCols = append(presenceCols, comp.Pos(f))
		}
		kept := comp.Rows[:0]
		removed := false
		for w := range comp.Rows {
			crow := &comp.Rows[w]
			// An absent tuple satisfies every dependency vacuously.
			present := true
			for _, c := range presenceCols {
				if crow.IsAbsent(c) {
					present = false
					break
				}
			}
			violated := false
			if present {
				get := func(ai uint16) int32 {
					if c, ok := cols[ai]; ok {
						return crow.Vals[c]
					}
					return r.Cols[ai][i]
				}
				violated = true
				for _, a := range d.Premise {
					if !applyOp(a.Theta, get(idx[a.Attr]), a.C) {
						violated = false
						break
					}
				}
				if violated {
					violated = !applyOp(d.Conclusion.Theta, get(idx[d.Conclusion.Attr]), d.Conclusion.C)
				}
			}
			if violated {
				removed = true
				continue
			}
			kept = append(kept, *crow)
		}
		comp.Rows = kept
		if len(comp.Rows) == 0 {
			return fmt.Errorf("%w: no value combination for tuple %d satisfies %v", ErrInconsistent, i, d)
		}
		if removed && !renormalize(comp) {
			return fmt.Errorf("%w: zero probability mass left for tuple %d", ErrInconsistent, i)
		}
	}
	return nil
}

// chaseRows returns the rows chaseOne must visit, in increasing order: all
// rows for the full scan, or only the placeholder-carrying rows when the
// caller vouches the certain data is clean.
func chaseRows(r *Relation, idx map[string]uint16, opt ChaseOptions) []int32 {
	if !opt.AssumeClean {
		out := make([]int32, r.NumRows())
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	out := make([]int32, 0, len(r.uncertain))
	for row, attrs := range r.uncertain {
		for _, a := range attrs {
			relevant := false
			for _, ai := range idx {
				if ai == a {
					relevant = true
					break
				}
			}
			if relevant {
				out = append(out, row)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// materializeCertain converts a certain template field into a placeholder
// backed by a fresh single-value component (probability 1), so it can be
// composed with other components during the chase.
func (s *Store) materializeCertain(r *Relation, row int32, ai uint16) error {
	v := r.Cols[ai][row]
	if v == Placeholder {
		return nil
	}
	f := FieldID{Rel: r.id, Row: row, Attr: ai}
	c := s.newComponent([]FieldID{f})
	c.Rows = append(c.Rows, CompRow{Vals: []int32{v}, P: 1})
	r.Cols[ai][row] = Placeholder
	r.uncertain[row] = append(r.uncertain[row], ai)
	return nil
}

// egdPossiblyViolated checks whether the dependency can be violated by some
// combination of possible values of row's fields.
func (s *Store) egdPossiblyViolated(r *Relation, row int32, d EGD, idx map[string]uint16) bool {
	someValue := func(attr string, pred func(int32) bool) bool {
		ai := idx[attr]
		v := r.Cols[ai][row]
		if v != Placeholder {
			return pred(v)
		}
		for _, pv := range s.fieldValues(FieldID{Rel: r.id, Row: row, Attr: ai}) {
			if pred(pv) {
				return true
			}
		}
		return false
	}
	for _, a := range d.Premise {
		at := a
		if !someValue(at.Attr, func(v int32) bool { return applyOp(at.Theta, v, at.C) }) {
			return false
		}
	}
	c := d.Conclusion
	return someValue(c.Attr, func(v int32) bool { return !applyOp(c.Theta, v, c.C) })
}

package engine

import (
	"fmt"
	"sync"
	"testing"
)

// arenaStore builds a small store with composed-component potential: two
// relations, or-set fields with absence-free and probability-weighted
// local worlds.
func arenaStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	if _, err := s.AddRelation("R", []string{"A", "B"}, [][]int32{{1, 2, 3}, {10, 20, 30}}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetUncertain("R", 0, "A", []int32{1, 2}, []float64{0.25, 0.75}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetUncertain("R", 2, "B", []int32{30, 40, 50}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddRelation("S", []string{"C", "D"}, [][]int32{{1, 2}, {7, 8}}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetUncertain("S", 1, "C", []int32{2, 3}, nil); err != nil {
		t.Fatal(err)
	}
	return s
}

// storeFingerprint captures everything queries must not change: catalog,
// per-relation stats, and the component count.
func storeFingerprint(s *Store) string {
	out := ""
	for _, name := range s.Relations() {
		out += fmt.Sprintf("%s:%+v;", name, s.Stats(name))
	}
	return fmt.Sprintf("%s comps=%d", out, s.NumComponents())
}

// TestArenaLeavesStoreUntouched runs every operator on an arena — including
// ones that force component adoption and composition — and checks the store
// is bit-for-bit unaffected, while the arena sees its own results.
func TestArenaLeavesStoreUntouched(t *testing.T) {
	s := arenaStore(t)
	before := storeFingerprint(s)
	a := NewArena(s.Snapshot())
	if _, err := a.Select("sel", "R", And{Gt("A", 1), Gt("B", 5)}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Project("proj", "sel", "B"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Rename("ren", "S", map[string]string{"C": "A2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Join("join", "proj", "ren", "B", "D"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Union("uni", "proj", "proj"); err != nil {
		t.Fatal(err)
	}
	if got := storeFingerprint(s); got != before {
		t.Fatalf("arena operators changed the store:\n pre %s\npost %s", before, got)
	}
	if err := s.Validate(1e-9); err != nil {
		t.Fatal(err)
	}
	if a.Rel("sel") == nil || a.Rel("join") == nil {
		t.Fatal("arena lost its results")
	}
	// The arena sees snapshot relations too.
	if a.Rel("R") == nil {
		t.Fatal("arena cannot see snapshot relation R")
	}
}

// TestArenaMatchesOneShot checks the two surfaces agree: the same operator
// chain run on an arena and through the deprecated Store wrappers yields
// identical world-sets and statistics.
func TestArenaMatchesOneShot(t *testing.T) {
	mkChain := func(sp Space) error {
		if _, err := sp.Select("sel", "R", Or{Eq("A", 2), Gt("B", 25)}); err != nil {
			return err
		}
		if _, err := sp.Project("res", "sel", "B"); err != nil {
			return err
		}
		return nil
	}
	sArena := arenaStore(t)
	a := NewArena(sArena.Snapshot())
	if err := mkChain(a); err != nil {
		t.Fatal(err)
	}
	sOne := arenaStore(t)
	if err := mkChain(sOne); err != nil {
		t.Fatal(err)
	}
	if got, want := a.Stats("res"), sOne.Stats("res"); got != want {
		t.Fatalf("stats diverge: arena %+v, one-shot %+v", got, want)
	}
	wa, err := a.RepRelation("res", 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	wo, err := sOne.RepRelation("res", 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if !wa.Equal(wo, 1e-9) {
		t.Fatal("arena and one-shot world-sets diverge")
	}
	if err := sOne.Validate(1e-9); err != nil {
		t.Fatal(err)
	}
}

// TestArenaCommitInstallsResult checks Commit: the arena relation lands in
// the store under a fresh id, its components replace the shadowed ones, and
// the store validates; committing a taken name fails without side effects.
func TestArenaCommitInstallsResult(t *testing.T) {
	s := arenaStore(t)
	a := NewArena(s.Snapshot())
	if _, err := a.Select("res", "R", Gt("A", 1)); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if s.Rel("res") == nil {
		t.Fatal("commit did not install res")
	}
	if err := s.Validate(1e-9); err != nil {
		t.Fatalf("store invalid after commit: %v", err)
	}
	// The result's uncertain fields resolve in the store's component space.
	if s.Stats("res").NumComp == 0 {
		t.Fatal("committed result has no components")
	}

	b := NewArena(s.Snapshot())
	if _, err := b.Select("res", "R", Gt("A", 0)); err == nil {
		t.Fatal("arena Select under a taken snapshot name must fail")
	}
	c := NewArena(s.Snapshot())
	if _, err := c.Select("res2", "R", Gt("A", 0)); err != nil {
		t.Fatal(err)
	}
	if err := c.RenameRelation("res2", "res"); err == nil {
		t.Fatal("renaming onto a taken name must fail")
	}
	s.DropRelation("res")
	if err := s.Validate(1e-9); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotFrozenAcrossWrites checks the copy-on-write contract: a
// snapshot keeps resolving its frozen catalog while the store commits new
// results, drops and renames relations.
func TestSnapshotFrozenAcrossWrites(t *testing.T) {
	s := arenaStore(t)
	snap := s.Snapshot()
	statsBefore := snap.Stats("R")

	// Writer: commit a result, drop it, rename a base relation.
	a := NewArena(s.Snapshot())
	if _, err := a.Select("res", "R", Gt("B", 15)); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	s.DropRelation("res")
	if err := s.RenameRelation("S", "S2"); err != nil {
		t.Fatal(err)
	}

	// The old snapshot still sees the original catalog.
	if snap.Rel("S") == nil || snap.Rel("S").Name != "S" {
		t.Fatal("snapshot lost relation S after rename")
	}
	if snap.Rel("res") != nil {
		t.Fatal("snapshot sees a relation committed after it was taken")
	}
	if got := snap.Stats("R"); got != statsBefore {
		t.Fatalf("snapshot stats drifted: %+v, want %+v", got, statsBefore)
	}
	// A query over the old snapshot still runs.
	b := NewArena(snap)
	if _, err := b.Join("j", "R", "S", "A", "C"); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(1e-9); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentArenasOverOneSnapshot runs many goroutines, each with its
// own arena over one shared snapshot, with operators that adopt and compose
// the same shared components; under -race this verifies the read path is
// lock- and write-free.
func TestConcurrentArenasOverOneSnapshot(t *testing.T) {
	s := arenaStore(t)
	snap := s.Snapshot()
	want := storeFingerprint(s)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				a := NewArena(snap)
				if _, err := a.Select("sel", "R", Gt("A", 1)); err != nil {
					errs <- err
					return
				}
				if _, err := a.Join("j", "sel", "S", "A", "C"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := storeFingerprint(s); got != want {
		t.Fatalf("concurrent arenas changed the store:\n pre %s\npost %s", want, got)
	}
}

package worlds

import (
	"fmt"

	"maybms/internal/relation"
)

// Query is a relational algebra query over a database schema: the language
// of Section 4 (σ, π, ×, ∪, −, δ over base relations). The same AST is
// evaluated three ways in this repository: naively per world (here, the
// ground truth), on WSDs (internal/core, Figure 9), and on the scalable
// UWSDT engine (internal/engine, Section 5).
type Query interface {
	// OutSchema computes the result schema under database schema s.
	OutSchema(s Schema) (relation.Schema, error)
	// String renders the query.
	String() string
}

// Base is a base relation reference R.
type Base struct{ Rel string }

// Select is σ_Pred(Q).
type Select struct {
	Q    Query
	Pred relation.Predicate
}

// Project is π_Attrs(Q).
type Project struct {
	Q     Query
	Attrs []string
}

// Product is Q1 × Q2; attribute sets must be disjoint.
type Product struct{ L, R Query }

// Union is Q1 ∪ Q2; schemas must match.
type Union struct{ L, R Query }

// Difference is Q1 − Q2; schemas must match. Evaluated here it is the
// per-world reference the engine's native difference (engine.Difference,
// the SQL EXCEPT path) is differential-tested against; queries should run
// on the engine, not through per-world enumeration.
type Difference struct{ L, R Query }

// Rename is δ_{Old→New}(Q).
type Rename struct {
	Q        Query
	Old, New string
}

// OutSchema implements Query.
func (q Base) OutSchema(s Schema) (relation.Schema, error) {
	rs, ok := s.Rel(q.Rel)
	if !ok {
		return relation.Schema{}, fmt.Errorf("worlds: unknown relation %q", q.Rel)
	}
	return relation.NewSchema(rs.Attrs...), nil
}

func (q Base) String() string { return q.Rel }

// OutSchema implements Query.
func (q Select) OutSchema(s Schema) (relation.Schema, error) { return q.Q.OutSchema(s) }

func (q Select) String() string { return fmt.Sprintf("σ[%s](%s)", q.Pred, q.Q) }

// OutSchema implements Query.
func (q Project) OutSchema(s Schema) (relation.Schema, error) {
	in, err := q.Q.OutSchema(s)
	if err != nil {
		return relation.Schema{}, err
	}
	return in.Project(q.Attrs...)
}

func (q Project) String() string { return fmt.Sprintf("π%v(%s)", q.Attrs, q.Q) }

// OutSchema implements Query.
func (q Product) OutSchema(s Schema) (relation.Schema, error) {
	l, err := q.L.OutSchema(s)
	if err != nil {
		return relation.Schema{}, err
	}
	r, err := q.R.OutSchema(s)
	if err != nil {
		return relation.Schema{}, err
	}
	return l.Concat(r)
}

func (q Product) String() string { return fmt.Sprintf("(%s × %s)", q.L, q.R) }

// OutSchema implements Query.
func (q Union) OutSchema(s Schema) (relation.Schema, error) {
	l, err := q.L.OutSchema(s)
	if err != nil {
		return relation.Schema{}, err
	}
	r, err := q.R.OutSchema(s)
	if err != nil {
		return relation.Schema{}, err
	}
	if !l.Equal(r) {
		return relation.Schema{}, fmt.Errorf("worlds: union schema mismatch %v vs %v", l, r)
	}
	return l, nil
}

func (q Union) String() string { return fmt.Sprintf("(%s ∪ %s)", q.L, q.R) }

// OutSchema implements Query.
func (q Difference) OutSchema(s Schema) (relation.Schema, error) {
	return Union{q.L, q.R}.OutSchema(s)
}

func (q Difference) String() string { return fmt.Sprintf("(%s − %s)", q.L, q.R) }

// OutSchema implements Query.
func (q Rename) OutSchema(s Schema) (relation.Schema, error) {
	in, err := q.Q.OutSchema(s)
	if err != nil {
		return relation.Schema{}, err
	}
	return in.Rename(q.Old, q.New)
}

func (q Rename) String() string { return fmt.Sprintf("δ[%s→%s](%s)", q.Old, q.New, q.Q) }

// Eval evaluates the query in one world. This is classical relational
// algebra; the decomposition-based evaluators are tested against it.
func Eval(q Query, db *Database) (*relation.Relation, error) {
	switch q := q.(type) {
	case Base:
		r := db.Rel(q.Rel)
		if r == nil {
			return nil, fmt.Errorf("worlds: unknown relation %q", q.Rel)
		}
		return r, nil
	case Select:
		in, err := Eval(q.Q, db)
		if err != nil {
			return nil, err
		}
		return relation.Select(in, q.Pred, "P"), nil
	case Project:
		in, err := Eval(q.Q, db)
		if err != nil {
			return nil, err
		}
		return relation.Project(in, "P", q.Attrs...)
	case Product:
		l, err := Eval(q.L, db)
		if err != nil {
			return nil, err
		}
		r, err := Eval(q.R, db)
		if err != nil {
			return nil, err
		}
		return relation.Product(l, r, "P")
	case Union:
		l, err := Eval(q.L, db)
		if err != nil {
			return nil, err
		}
		r, err := Eval(q.R, db)
		if err != nil {
			return nil, err
		}
		return relation.Union(l, r, "P")
	case Difference:
		l, err := Eval(q.L, db)
		if err != nil {
			return nil, err
		}
		r, err := Eval(q.R, db)
		if err != nil {
			return nil, err
		}
		return relation.Difference(l, r, "P")
	case Rename:
		in, err := Eval(q.Q, db)
		if err != nil {
			return nil, err
		}
		return relation.Rename(in, q.Old, q.New, "P")
	}
	return nil, fmt.Errorf("worlds: unknown query node %T", q)
}

// EvalWorldSet evaluates Q in every world of ws and returns the world-set
// {Q(A) | A ∈ rep(ws)} over a single-relation schema named result. World
// probabilities carry over unchanged: query evaluation is per-world and does
// not look at the weights (Remark 2 of the paper).
func EvalWorldSet(q Query, ws *WorldSet, result string) (*WorldSet, error) {
	outSchema, err := q.OutSchema(ws.Schema)
	if err != nil {
		return nil, err
	}
	rs := RelSchema{Name: result, Attrs: outSchema.Attrs()}
	out := NewWorldSet(NewSchema(rs))
	for i, w := range ws.Worlds {
		res, err := Eval(q, w)
		if err != nil {
			return nil, err
		}
		db := NewDatabase(out.Schema)
		for _, t := range res.Tuples() {
			db.Rels[result].Insert(t.Clone())
		}
		out.Add(db, ws.Probs[i])
	}
	return out, nil
}

package worlds

import (
	"math/rand"
	"testing"

	"maybms/internal/relation"
)

func schemaR() Schema {
	return NewSchema(RelSchema{Name: "R", Attrs: []string{"A", "B"}})
}

func dbWith(t *testing.T, s Schema, rel string, tuples ...relation.Tuple) *Database {
	t.Helper()
	db := NewDatabase(s)
	for _, tup := range tuples {
		db.Rels[rel].Insert(tup)
	}
	return db
}

func TestDatabaseCloneEqual(t *testing.T) {
	s := schemaR()
	a := dbWith(t, s, "R", relation.Ints(1, 2))
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Rels["R"].Insert(relation.Ints(3, 4))
	if a.Equal(b) {
		t.Fatal("clone shares storage")
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("fingerprints must differ")
	}
}

func TestWorldSetEqualModuloDuplicates(t *testing.T) {
	s := schemaR()
	w1 := dbWith(t, s, "R", relation.Ints(1, 1))
	w2 := dbWith(t, s, "R", relation.Ints(2, 2))

	a := NewWorldSet(s)
	a.Add(w1, 0.5)
	a.Add(w2, 0.5)

	b := NewWorldSet(s)
	b.Add(w2.Clone(), 0.25)
	b.Add(w1.Clone(), 0.5)
	b.Add(w2.Clone(), 0.25) // duplicate world, probabilities accumulate

	if !a.Equal(b, 1e-9) {
		t.Fatal("world-sets should be equal modulo duplicates")
	}
	c := NewWorldSet(s)
	c.Add(w1.Clone(), 1)
	if a.Equal(c, 1e-9) {
		t.Fatal("different world-sets compare equal")
	}
}

func TestWorldSetValidate(t *testing.T) {
	s := schemaR()
	ws := NewWorldSet(s)
	ws.Add(dbWith(t, s, "R", relation.Ints(1, 1)), 0.4)
	ws.Add(dbWith(t, s, "R", relation.Ints(2, 2)), 0.6)
	if err := ws.Validate(1e-9); err != nil {
		t.Fatalf("valid world-set rejected: %v", err)
	}
	ws.Probs[1] = 0.7
	if err := ws.Validate(1e-9); err == nil {
		t.Fatal("invalid probability sum accepted")
	}
	// Non-probabilistic sets validate trivially.
	np := NewWorldSet(s)
	np.Add(dbWith(t, s, "R", relation.Ints(1, 1)), 0)
	if err := np.Validate(1e-9); err != nil {
		t.Fatalf("non-probabilistic set rejected: %v", err)
	}
}

func TestMaxCardinalities(t *testing.T) {
	s := schemaR()
	ws := NewWorldSet(s)
	ws.Add(dbWith(t, s, "R", relation.Ints(1, 1), relation.Ints(2, 2)), 0)
	ws.Add(dbWith(t, s, "R", relation.Ints(3, 3)), 0)
	if got := ws.MaxCardinalities()["R"]; got != 2 {
		t.Fatalf("|R|max = %d, want 2", got)
	}
}

func TestInlineRoundtrip(t *testing.T) {
	s := NewSchema(
		RelSchema{Name: "R", Attrs: []string{"A", "B"}},
		RelSchema{Name: "S", Attrs: []string{"C"}},
	)
	db := NewDatabase(s)
	db.Rels["R"].Insert(relation.Ints(1, 2))
	db.Rels["R"].Insert(relation.Ints(3, 4))
	db.Rels["S"].Insert(relation.Ints(9))
	maxCard := map[string]int{"R": 3, "S": 2}

	wide, err := Inline(db, maxCard)
	if err != nil {
		t.Fatal(err)
	}
	if len(wide) != 3*2+2*1 {
		t.Fatalf("inline width = %d", len(wide))
	}
	back, err := InlineInverse(s, maxCard, wide)
	if err != nil {
		t.Fatal(err)
	}
	if !db.Equal(back) {
		t.Fatalf("roundtrip lost data:\n%v\nvs\n%v", db, back)
	}
}

func TestInlineOverflow(t *testing.T) {
	s := schemaR()
	db := dbWith(t, s, "R", relation.Ints(1, 1), relation.Ints(2, 2))
	if _, err := Inline(db, map[string]int{"R": 1}); err == nil {
		t.Fatal("overflow must error")
	}
}

func TestInlineInverseErrors(t *testing.T) {
	s := schemaR()
	if _, err := InlineInverse(s, map[string]int{"R": 1}, relation.Ints(1)); err == nil {
		t.Fatal("short tuple must error")
	}
	if _, err := InlineInverse(s, map[string]int{"R": 1}, relation.Ints(1, 2, 3)); err == nil {
		t.Fatal("long tuple must error")
	}
}

func TestWorldSetRelationRoundtrip(t *testing.T) {
	s := schemaR()
	rng := rand.New(rand.NewSource(3))
	ws := NewWorldSet(s)
	for w := 0; w < 12; w++ {
		db := NewDatabase(s)
		for i := 0; i < rng.Intn(4); i++ {
			db.Rels["R"].Insert(relation.Ints(int64(rng.Intn(3)), int64(rng.Intn(3))))
		}
		ws.Add(db, 0)
	}
	wsr, maxCard, err := WorldSetRelation(ws)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromWorldSetRelation(s, maxCard, wsr)
	if err != nil {
		t.Fatal(err)
	}
	if !ws.Equal(back, 0) {
		t.Fatal("world-set relation roundtrip lost worlds")
	}
}

func TestFieldName(t *testing.T) {
	if got := FieldName("R", 2, "B"); got != "R.t2.B" {
		t.Fatalf("FieldName = %q", got)
	}
}

func TestQueryEval(t *testing.T) {
	s := schemaR()
	db := dbWith(t, s, "R",
		relation.Ints(1, 10), relation.Ints(2, 20), relation.Ints(3, 30))

	q := Select{Q: Base{"R"}, Pred: relation.Cmp("A", GEint(), 2)}
	res, err := Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 2 {
		t.Fatalf("select size = %d", res.Size())
	}

	pq := Project{Q: q, Attrs: []string{"B"}}
	res, err = Eval(pq, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 2 || !res.Contains(relation.Ints(20)) {
		t.Fatalf("project got %v", res)
	}

	uq := Union{L: q, R: Select{Q: Base{"R"}, Pred: relation.Eq("A", 1)}}
	res, err = Eval(uq, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 3 {
		t.Fatalf("union size = %d", res.Size())
	}

	dq := Difference{L: Base{"R"}, R: q}
	res, err = Eval(dq, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 1 || !res.Contains(relation.Ints(1, 10)) {
		t.Fatalf("difference got %v", res)
	}

	rq := Rename{Q: Base{"R"}, Old: "A", New: "X"}
	res, err = Eval(rq, db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schema().Has("X") {
		t.Fatal("rename lost attribute")
	}

	xq := Product{L: rq, R: Rename{Q: Rename{Q: Base{"R"}, Old: "A", New: "C"}, Old: "B", New: "D"}}
	res, err = Eval(xq, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 9 {
		t.Fatalf("product size = %d", res.Size())
	}
}

// GEint avoids an import cycle on relation.GE in composite literals above.
func GEint() relation.Op { return relation.GE }

func TestQueryErrors(t *testing.T) {
	s := schemaR()
	db := NewDatabase(s)
	if _, err := Eval(Base{"Z"}, db); err == nil {
		t.Fatal("unknown relation must error")
	}
	if _, err := Eval(Union{L: Base{"R"}, R: Rename{Q: Base{"R"}, Old: "A", New: "X"}}, db); err == nil {
		t.Fatal("union schema mismatch must error")
	}
	if _, err := (Product{L: Base{"R"}, R: Base{"R"}}).OutSchema(s); err == nil {
		t.Fatal("self-product without rename must error")
	}
}

func TestEvalWorldSet(t *testing.T) {
	s := schemaR()
	ws := NewWorldSet(s)
	ws.Add(dbWith(t, s, "R", relation.Ints(1, 10)), 0.3)
	ws.Add(dbWith(t, s, "R", relation.Ints(2, 20)), 0.7)
	out, err := EvalWorldSet(Select{Q: Base{"R"}, Pred: relation.Eq("A", 1)}, ws, "P")
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 2 {
		t.Fatalf("size = %d", out.Size())
	}
	if out.Worlds[0].Rel("P").Size() != 1 || out.Worlds[1].Rel("P").Size() != 0 {
		t.Fatal("per-world results wrong")
	}
	if out.Probs[0] != 0.3 || out.Probs[1] != 0.7 {
		t.Fatal("probabilities must carry over")
	}
}

// Package worlds implements explicit finite sets of possible worlds over a
// relational schema (Section 2 and Section 3 of the paper): databases,
// world-sets with probability weights, the inline/inline⁻¹ encoding of a
// world as a single wide tuple, and world-set relations.
//
// Explicit world-sets are exponential objects; this package exists as the
// semantic ground truth. Every operation on decompositions in internal/core
// is property-tested against naive per-world evaluation implemented here, and
// the world-set relation is the baseline representation whose size explosion
// motivates WSDs.
package worlds

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"maybms/internal/relation"
)

// RelSchema is one relation schema R[U] of a database schema Σ.
type RelSchema struct {
	Name  string
	Attrs []string
}

// Schema is a database schema Σ = (R1[U1], ..., Rk[Uk]).
type Schema struct {
	Rels []RelSchema
}

// NewSchema builds a schema from (name, attrs...) groups.
func NewSchema(rels ...RelSchema) Schema { return Schema{Rels: rels} }

// Rel returns the schema of the named relation.
func (s Schema) Rel(name string) (RelSchema, bool) {
	for _, r := range s.Rels {
		if r.Name == name {
			return r, true
		}
	}
	return RelSchema{}, false
}

// Names returns the relation names in schema order.
func (s Schema) Names() []string {
	out := make([]string, len(s.Rels))
	for i, r := range s.Rels {
		out[i] = r.Name
	}
	return out
}

// Database is one possible world: a relation instance for every relation
// name of its schema.
type Database struct {
	Schema Schema
	Rels   map[string]*relation.Relation
}

// NewDatabase creates an empty database over schema s (all relations empty).
func NewDatabase(s Schema) *Database {
	db := &Database{Schema: s, Rels: make(map[string]*relation.Relation, len(s.Rels))}
	for _, rs := range s.Rels {
		db.Rels[rs.Name] = relation.New(rs.Name, relation.NewSchema(rs.Attrs...))
	}
	return db
}

// Rel returns the named relation; nil if the name is unknown.
func (db *Database) Rel(name string) *relation.Relation { return db.Rels[name] }

// Clone deep-copies the database.
func (db *Database) Clone() *Database {
	c := &Database{Schema: db.Schema, Rels: make(map[string]*relation.Relation, len(db.Rels))}
	for n, r := range db.Rels {
		c.Rels[n] = r.Clone("")
	}
	return c
}

// Equal reports whether two databases have the same relations with the same
// tuples, by name.
func (db *Database) Equal(o *Database) bool {
	if len(db.Rels) != len(o.Rels) {
		return false
	}
	for n, r := range db.Rels {
		or, ok := o.Rels[n]
		if !ok || !r.Equal(or) {
			return false
		}
	}
	return true
}

// Fingerprint returns a canonical string identifying the database contents.
func (db *Database) Fingerprint() string {
	names := make([]string, 0, len(db.Rels))
	for n := range db.Rels {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s:%s;", n, db.Rels[n].Fingerprint())
	}
	return b.String()
}

// String renders all relations of the database.
func (db *Database) String() string {
	names := make([]string, 0, len(db.Rels))
	for n := range db.Rels {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = db.Rels[n].String()
	}
	return strings.Join(parts, "\n")
}

// WorldSet is a finite set of possible worlds with probability weights.
// A weight of 0 on every world means "non-probabilistic"; otherwise the
// weights should sum to 1 (checked by Validate).
type WorldSet struct {
	Schema Schema
	Worlds []*Database
	Probs  []float64
}

// NewWorldSet creates an empty world-set over schema s.
func NewWorldSet(s Schema) *WorldSet { return &WorldSet{Schema: s} }

// Add appends a world with probability p.
func (ws *WorldSet) Add(db *Database, p float64) {
	ws.Worlds = append(ws.Worlds, db)
	ws.Probs = append(ws.Probs, p)
}

// Size returns the number of listed worlds (duplicates counted).
func (ws *WorldSet) Size() int { return len(ws.Worlds) }

// Probabilistic reports whether any world carries a nonzero weight.
func (ws *WorldSet) Probabilistic() bool {
	for _, p := range ws.Probs {
		if p != 0 {
			return true
		}
	}
	return false
}

// TotalProb returns the sum of the world weights.
func (ws *WorldSet) TotalProb() float64 {
	var s float64
	for _, p := range ws.Probs {
		s += p
	}
	return s
}

// Validate checks that a probabilistic world-set has weights in [0,1]
// summing to 1 (within eps).
func (ws *WorldSet) Validate(eps float64) error {
	if !ws.Probabilistic() {
		return nil
	}
	for i, p := range ws.Probs {
		if p < -eps || p > 1+eps {
			return fmt.Errorf("worlds: world %d has probability %g outside [0,1]", i, p)
		}
	}
	if d := math.Abs(ws.TotalProb() - 1); d > eps {
		return fmt.Errorf("worlds: probabilities sum to %g, want 1", ws.TotalProb())
	}
	return nil
}

// Canonical groups duplicate worlds, summing their probabilities, and
// returns fingerprint → (representative world, total probability). This is
// the comparison form: two representations denote the same probabilistic
// world-set iff their canonical maps agree.
func (ws *WorldSet) Canonical() map[string]CanonWorld {
	m := make(map[string]CanonWorld)
	for i, w := range ws.Worlds {
		fp := w.Fingerprint()
		cw := m[fp]
		if cw.World == nil {
			cw.World = w
		}
		cw.Prob += ws.Probs[i]
		m[fp] = cw
	}
	return m
}

// CanonWorld is a deduplicated world with its accumulated probability.
type CanonWorld struct {
	World *Database
	Prob  float64
}

// Equal reports whether two world-sets denote the same set of worlds,
// ignoring duplicates and, when both are probabilistic, comparing
// accumulated probabilities within eps. If exactly one side is
// probabilistic, probabilities are ignored.
func (ws *WorldSet) Equal(o *WorldSet, eps float64) bool {
	a, b := ws.Canonical(), o.Canonical()
	if len(a) != len(b) {
		return false
	}
	checkProbs := ws.Probabilistic() && o.Probabilistic()
	for fp, cw := range a {
		ow, ok := b[fp]
		if !ok {
			return false
		}
		if checkProbs && math.Abs(cw.Prob-ow.Prob) > eps {
			return false
		}
	}
	return true
}

// MaxCardinalities returns |R|max for every relation: the maximum number of
// tuples the relation has in any world. Used to size the inline encoding.
func (ws *WorldSet) MaxCardinalities() map[string]int {
	m := make(map[string]int)
	for _, rs := range ws.Schema.Rels {
		m[rs.Name] = 0
	}
	for _, w := range ws.Worlds {
		for n, r := range w.Rels {
			if r.Size() > m[n] {
				m[n] = r.Size()
			}
		}
	}
	return m
}

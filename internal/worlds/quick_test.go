package worlds

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"maybms/internal/relation"
)

// Property: inline then inline⁻¹ is the identity on databases, for random
// instances and paddings.
func TestQuickInlineRoundtrip(t *testing.T) {
	f := func(seed int64, padRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSchema(
			RelSchema{Name: "R", Attrs: []string{"A", "B"}},
			RelSchema{Name: "S", Attrs: []string{"C"}},
		)
		db := NewDatabase(s)
		for i := 0; i < rng.Intn(4); i++ {
			db.Rels["R"].Insert(relation.Ints(int64(rng.Intn(3)), int64(rng.Intn(3))))
		}
		for i := 0; i < rng.Intn(3); i++ {
			db.Rels["S"].Insert(relation.Ints(int64(rng.Intn(3))))
		}
		maxCard := map[string]int{
			"R": db.Rels["R"].Size() + int(padRaw)%3,
			"S": db.Rels["S"].Size() + int(padRaw)%2,
		}
		wide, err := Inline(db, maxCard)
		if err != nil {
			return false
		}
		back, err := InlineInverse(s, maxCard, wide)
		if err != nil {
			return false
		}
		return db.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the world-set relation has one tuple per distinct inlining and
// decodes to the same world-set.
func TestQuickWorldSetRelationFaithful(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSchema(RelSchema{Name: "R", Attrs: []string{"A"}})
		ws := NewWorldSet(s)
		for w := 0; w < 1+rng.Intn(6); w++ {
			db := NewDatabase(s)
			for i := 0; i < rng.Intn(3); i++ {
				db.Rels["R"].Insert(relation.Ints(int64(rng.Intn(3))))
			}
			ws.Add(db, 0)
		}
		wsr, maxCard, err := WorldSetRelation(ws)
		if err != nil {
			return false
		}
		back, err := FromWorldSetRelation(s, maxCard, wsr)
		if err != nil {
			return false
		}
		return ws.Equal(back, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: EvalWorldSet commutes with adding an unrelated world (query
// evaluation is per world).
func TestQuickEvalPerWorld(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSchema(RelSchema{Name: "R", Attrs: []string{"A", "B"}})
		mkdb := func() *Database {
			db := NewDatabase(s)
			for i := 0; i < rng.Intn(4); i++ {
				db.Rels["R"].Insert(relation.Ints(int64(rng.Intn(3)), int64(rng.Intn(3))))
			}
			return db
		}
		q := Select{Q: Base{Rel: "R"}, Pred: relation.Eq("A", 1)}
		a := NewWorldSet(s)
		a.Add(mkdb(), 0)
		outA, err := EvalWorldSet(q, a, "P")
		if err != nil {
			return false
		}
		b := NewWorldSet(s)
		b.Add(a.Worlds[0], 0)
		b.Add(mkdb(), 0)
		outB, err := EvalWorldSet(q, b, "P")
		if err != nil {
			return false
		}
		// The first world's result must be identical in both evaluations.
		return outA.Worlds[0].Equal(outB.Worlds[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestQueryStrings(t *testing.T) {
	q := Difference{
		L: Union{
			L: Project{Q: Select{Q: Base{Rel: "R"}, Pred: relation.Eq("A", 1)}, Attrs: []string{"A"}},
			R: Project{Q: Rename{Q: Base{Rel: "R"}, Old: "B", New: "A2"}, Attrs: []string{"A"}},
		},
		R: Project{Q: Product{L: Base{Rel: "R"}, R: Base{Rel: "S"}}, Attrs: []string{"A"}},
	}
	s := q.String()
	for _, want := range []string{"σ", "π", "δ", "×", "∪", "−", "R", "S"} {
		if !strings.Contains(s, want) {
			t.Fatalf("query string %q missing %q", s, want)
		}
	}
}

func TestOutSchemas(t *testing.T) {
	s := NewSchema(
		RelSchema{Name: "R", Attrs: []string{"A", "B"}},
		RelSchema{Name: "S", Attrs: []string{"C"}},
	)
	cases := []struct {
		q    Query
		want []string
	}{
		{Base{Rel: "R"}, []string{"A", "B"}},
		{Select{Q: Base{Rel: "R"}, Pred: relation.Eq("A", 1)}, []string{"A", "B"}},
		{Project{Q: Base{Rel: "R"}, Attrs: []string{"B"}}, []string{"B"}},
		{Product{L: Base{Rel: "R"}, R: Base{Rel: "S"}}, []string{"A", "B", "C"}},
		{Union{L: Base{Rel: "R"}, R: Base{Rel: "R"}}, []string{"A", "B"}},
		{Difference{L: Base{Rel: "R"}, R: Base{Rel: "R"}}, []string{"A", "B"}},
		{Rename{Q: Base{Rel: "R"}, Old: "A", New: "X"}, []string{"X", "B"}},
	}
	for _, c := range cases {
		got, err := c.q.OutSchema(s)
		if err != nil {
			t.Fatalf("%v: %v", c.q, err)
		}
		if !got.Equal(relation.NewSchema(c.want...)) {
			t.Fatalf("%v: schema %v, want %v", c.q, got, c.want)
		}
	}
	// Error paths.
	bads := []Query{
		Base{Rel: "Z"},
		Select{Q: Base{Rel: "Z"}, Pred: relation.Eq("A", 1)},
		Project{Q: Base{Rel: "R"}, Attrs: []string{"Z"}},
		Project{Q: Base{Rel: "Z"}, Attrs: []string{"A"}},
		Product{L: Base{Rel: "R"}, R: Base{Rel: "R"}},
		Product{L: Base{Rel: "Z"}, R: Base{Rel: "R"}},
		Product{L: Base{Rel: "R"}, R: Base{Rel: "Z"}},
		Union{L: Base{Rel: "R"}, R: Base{Rel: "S"}},
		Union{L: Base{Rel: "Z"}, R: Base{Rel: "R"}},
		Union{L: Base{Rel: "R"}, R: Base{Rel: "Z"}},
		Rename{Q: Base{Rel: "R"}, Old: "Z", New: "X"},
		Rename{Q: Base{Rel: "Z"}, Old: "A", New: "X"},
	}
	for _, q := range bads {
		if _, err := q.OutSchema(s); err == nil {
			t.Fatalf("%v: expected schema error", q)
		}
	}
}

func TestSchemaNames(t *testing.T) {
	s := NewSchema(RelSchema{Name: "R"}, RelSchema{Name: "S"})
	names := s.Names()
	if len(names) != 2 || names[0] != "R" || names[1] != "S" {
		t.Fatalf("Names = %v", names)
	}
}

func TestDatabaseString(t *testing.T) {
	s := NewSchema(RelSchema{Name: "R", Attrs: []string{"A"}})
	db := NewDatabase(s)
	db.Rels["R"].Insert(relation.Ints(7))
	if !strings.Contains(db.String(), "7") {
		t.Fatal("String lost data")
	}
}

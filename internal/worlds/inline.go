package worlds

import (
	"fmt"

	"maybms/internal/relation"
)

// This file implements the inline encoding of Section 3: a world A over
// schema Σ becomes a single wide tuple inline(A) = inline(R1^A) ◦ ... ◦
// inline(Rk^A), padding each relation with t⊥ tuples up to |R|max, and the
// world-set relation {inline(A) | A ∈ ws}.

// InlineSchema returns the schema of the world-set relation of ws: one
// attribute "R.ti.Aj" per relation R, tuple slot i (1-based, up to |R|max)
// and attribute Aj of R.
func InlineSchema(s Schema, maxCard map[string]int) relation.Schema {
	var attrs []string
	for _, rs := range s.Rels {
		for i := 1; i <= maxCard[rs.Name]; i++ {
			for _, a := range rs.Attrs {
				attrs = append(attrs, FieldName(rs.Name, i, a))
			}
		}
	}
	return relation.NewSchema(attrs...)
}

// FieldName renders the world-set relation attribute name for field
// (R, ti, A); the R.ti.Aj of the paper.
func FieldName(rel string, tupleID int, attr string) string {
	return fmt.Sprintf("%s.t%d.%s", rel, tupleID, attr)
}

// Inline encodes world db as a single wide tuple, ordering each relation's
// tuples canonically and padding with ⊥ up to maxCard. It returns an error
// if a relation exceeds its maximum cardinality.
func Inline(db *Database, maxCard map[string]int) (relation.Tuple, error) {
	var out relation.Tuple
	for _, rs := range db.Schema.Rels {
		r := db.Rels[rs.Name]
		max := maxCard[rs.Name]
		if r.Size() > max {
			return nil, fmt.Errorf("worlds: relation %s has %d tuples, max %d", rs.Name, r.Size(), max)
		}
		// Canonical tuple order keeps the encoding deterministic; the
		// paper leaves the order arbitrary (all choices are equivalent).
		for _, t := range r.SortedTuples() {
			out = append(out, t...)
		}
		pad := max - r.Size()
		for i := 0; i < pad*len(rs.Attrs); i++ {
			out = append(out, relation.Bottom())
		}
	}
	return out, nil
}

// InlineInverse decodes a wide tuple back into a world, dropping every tuple
// slot that contains at least one ⊥ (the t⊥ convention).
func InlineInverse(s Schema, maxCard map[string]int, wide relation.Tuple) (*Database, error) {
	db := NewDatabase(s)
	pos := 0
	for _, rs := range s.Rels {
		ar := len(rs.Attrs)
		for i := 0; i < maxCard[rs.Name]; i++ {
			if pos+ar > len(wide) {
				return nil, fmt.Errorf("worlds: inline tuple too short for %s", rs.Name)
			}
			slot := wide[pos : pos+ar]
			pos += ar
			if !relation.Tuple(slot).HasBottom() {
				db.Rels[rs.Name].Insert(relation.Tuple(slot).Clone())
			}
		}
	}
	if pos != len(wide) {
		return nil, fmt.Errorf("worlds: inline tuple has %d extra fields", len(wide)-pos)
	}
	return db, nil
}

// WorldSetRelation builds the explicit world-set relation of ws: one wide
// tuple per world. This is the representation whose size the paper's
// introduction shows to be infeasible; it is built here only for small
// world-sets (tests, baselines).
func WorldSetRelation(ws *WorldSet) (*relation.Relation, map[string]int, error) {
	maxCard := ws.MaxCardinalities()
	sch := InlineSchema(ws.Schema, maxCard)
	r := relation.New("W", sch)
	for _, w := range ws.Worlds {
		t, err := Inline(w, maxCard)
		if err != nil {
			return nil, nil, err
		}
		r.Insert(t)
	}
	return r, maxCard, nil
}

// FromWorldSetRelation decodes a world-set relation back to the world-set it
// represents (without probabilities).
func FromWorldSetRelation(s Schema, maxCard map[string]int, r *relation.Relation) (*WorldSet, error) {
	ws := NewWorldSet(s)
	for _, t := range r.Tuples() {
		db, err := InlineInverse(s, maxCard, t)
		if err != nil {
			return nil, err
		}
		ws.Add(db, 0)
	}
	return ws, nil
}

// Package vettest drives the maybms-vet analyzers over small testdata
// packages and checks their diagnostics against // want comments — a
// minimal stand-in for golang.org/x/tools/go/analysis/analysistest, which
// is not part of the vendored x/tools subset (the subset mirrors what the
// Go toolchain itself vendors, and the toolchain does not ship
// analysistest).
//
// Layout follows the analysistest convention: an analyzer's test loads
// packages from <analyzer dir>/testdata/src/<import path>. Imports between
// testdata packages resolve within that tree; standard-library imports
// resolve through `go list -export`, so the type information is the real
// compiler's. A diagnostic must be announced by a
//
//	// want "regexp"
//
// comment on the offending line (several quoted regexps allow several
// diagnostics on one line), and every announced diagnostic must fire:
// unmatched wants and unexpected diagnostics both fail the test.
package vettest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads the testdata package at dir/src/<path> for each path, applies
// analyzer a (running its transitive requirements and fact producers
// first) and checks a's diagnostics against the packages' // want
// comments. It returns those diagnostics in file order so tests can make
// extra assertions (suggested fixes, positions).
func Run(t *testing.T, dir string, a *analysis.Analyzer, paths ...string) []analysis.Diagnostic {
	t.Helper()
	ld := newLoader(t, filepath.Join(dir, "src"))
	var out []analysis.Diagnostic
	for _, path := range paths {
		pkg := ld.load(path)
		ld.run(a, pkg)
		diags := ld.diags[resultKey{a, pkg}]
		checkWants(t, ld.fset, pkg, diags)
		out = append(out, diags...)
	}
	return out
}

// TestData returns the absolute path of the calling test's testdata
// directory, mirroring analysistest.TestData.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

type resultKey struct {
	a   *analysis.Analyzer
	pkg *lpkg
}

type lpkg struct {
	path    string
	files   []*ast.File
	types   *types.Package
	info    *types.Info
	imports []string // local (testdata) imports, in first-seen order
}

type loader struct {
	t       *testing.T
	srcRoot string
	fset    *token.FileSet
	pkgs    map[string]*lpkg
	std     types.ImporterFrom
	exports map[string]string // std import path -> export data file

	results  map[resultKey]interface{}
	diags    map[resultKey][]analysis.Diagnostic
	objFacts map[types.Object]map[reflect.Type]analysis.Fact
	pkgFacts map[*types.Package]map[reflect.Type]analysis.Fact
}

func newLoader(t *testing.T, srcRoot string) *loader {
	ld := &loader{
		t:        t,
		srcRoot:  srcRoot,
		fset:     token.NewFileSet(),
		pkgs:     map[string]*lpkg{},
		exports:  map[string]string{},
		results:  map[resultKey]interface{}{},
		diags:    map[resultKey][]analysis.Diagnostic{},
		objFacts: map[types.Object]map[reflect.Type]analysis.Fact{},
		pkgFacts: map[*types.Package]map[reflect.Type]analysis.Fact{},
	}
	ld.std = importer.ForCompiler(ld.fset, "gc", ld.lookupExport).(types.ImporterFrom)
	return ld
}

func (ld *loader) isLocal(path string) bool {
	st, err := os.Stat(filepath.Join(ld.srcRoot, filepath.FromSlash(path)))
	return err == nil && st.IsDir()
}

// load parses and type-checks the testdata package at path (memoized).
func (ld *loader) load(path string) *lpkg {
	ld.t.Helper()
	if p, ok := ld.pkgs[path]; ok {
		if p == nil {
			ld.t.Fatalf("import cycle through testdata package %s", path)
		}
		return p
	}
	ld.pkgs[path] = nil // cycle marker
	dir := filepath.Join(ld.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		ld.t.Fatalf("reading testdata package %s: %v", path, err)
	}
	p := &lpkg{path: path}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		ld.t.Fatalf("testdata package %s has no Go files", path)
	}
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			ld.t.Fatalf("parsing %s: %v", name, err)
		}
		p.files = append(p.files, f)
	}
	// Load local imports first (and record them for fact propagation); the
	// std ones are batch-resolved below.
	var std []string
	for _, f := range p.files {
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil || ip == "unsafe" {
				continue
			}
			if ld.isLocal(ip) {
				seen := false
				for _, have := range p.imports {
					if have == ip {
						seen = true
					}
				}
				if !seen {
					p.imports = append(p.imports, ip)
					ld.load(ip)
				}
			} else if _, ok := ld.exports[ip]; !ok {
				std = append(std, ip)
			}
		}
	}
	ld.resolveStd(std)

	p.info = &types.Info{
		Types:        map[ast.Expr]types.TypeAndValue{},
		Instances:    map[*ast.Ident]types.Instance{},
		Defs:         map[*ast.Ident]types.Object{},
		Uses:         map[*ast.Ident]types.Object{},
		Implicits:    map[ast.Node]types.Object{},
		Selections:   map[*ast.SelectorExpr]*types.Selection{},
		Scopes:       map[ast.Node]*types.Scope{},
		FileVersions: map[*ast.File]string{},
	}
	var terrs []error
	conf := &types.Config{
		Importer: ld,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	tpkg, _ := conf.Check(path, ld.fset, p.files, p.info)
	if len(terrs) > 0 {
		for _, e := range terrs {
			ld.t.Errorf("testdata package %s: %v", path, e)
		}
		ld.t.Fatalf("testdata package %s does not type-check", path)
	}
	p.types = tpkg
	ld.pkgs[path] = p
	return p
}

// resolveStd maps standard-library import paths to their export data via
// one `go list -export -deps` invocation (deps included: reading fmt's
// export data makes the importer ask for its dependencies too).
func (ld *loader) resolveStd(paths []string) {
	ld.t.Helper()
	var missing []string
	for _, p := range paths {
		if _, ok := ld.exports[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) == 0 {
		return
	}
	args := append([]string{"list", "-export", "-deps", "-f", "{{.ImportPath}}\t{{.Export}}"}, missing...)
	cmd := exec.Command("go", args...)
	out, err := cmd.Output()
	if err != nil {
		msg := err.Error()
		if ee, ok := err.(*exec.ExitError); ok {
			msg = string(ee.Stderr)
		}
		ld.t.Fatalf("go list -export %s: %v", strings.Join(missing, " "), msg)
	}
	for _, line := range strings.Split(string(out), "\n") {
		path, file, ok := strings.Cut(strings.TrimSpace(line), "\t")
		if ok && path != "" && file != "" {
			ld.exports[path] = file
		}
	}
}

func (ld *loader) lookupExport(path string) (io.ReadCloser, error) {
	file, ok := ld.exports[path]
	if !ok {
		return nil, fmt.Errorf("vettest: no export data for %q", path)
	}
	return os.Open(file)
}

// Import / ImportFrom make the loader the type-checker's importer:
// testdata packages resolve within the tree, everything else through the
// compiler's export data.
func (ld *loader) Import(path string) (*types.Package, error) {
	return ld.ImportFrom(path, "", 0)
}

func (ld *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if ld.isLocal(path) {
		return ld.load(path).types, nil
	}
	ld.resolveStd([]string{path})
	return ld.std.ImportFrom(path, dir, mode)
}

// run applies analyzer a to pkg (memoized): requirements first, and — so
// cross-package facts work like in a real driver — fact-producing
// analyzers run over pkg's local imports before pkg itself.
func (ld *loader) run(a *analysis.Analyzer, pkg *lpkg) interface{} {
	ld.t.Helper()
	key := resultKey{a, pkg}
	if res, ok := ld.results[key]; ok {
		return res
	}
	if len(a.FactTypes) > 0 {
		for _, imp := range pkg.imports {
			ld.run(a, ld.pkgs[imp])
		}
	}
	deps := map[*analysis.Analyzer]interface{}{}
	for _, req := range a.Requires {
		deps[req] = ld.run(req, pkg)
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       ld.fset,
		Files:      pkg.files,
		Pkg:        pkg.types,
		TypesInfo:  pkg.info,
		TypesSizes: types.SizesFor("gc", runtime.GOARCH),
		ResultOf:   deps,
		ReadFile:   os.ReadFile,
		Report: func(d analysis.Diagnostic) {
			ld.diags[key] = append(ld.diags[key], d)
		},
		ImportObjectFact:  ld.importObjectFact,
		ExportObjectFact:  ld.exportObjectFact,
		ImportPackageFact: ld.importPackageFact,
		ExportPackageFact: func(fact analysis.Fact) { ld.exportPackageFact(pkg.types, fact) },
		AllObjectFacts:    ld.allObjectFacts,
		AllPackageFacts:   ld.allPackageFacts,
	}
	res, err := a.Run(pass)
	if err != nil {
		ld.t.Fatalf("analyzer %s failed on %s: %v", a.Name, pkg.path, err)
	}
	ld.results[key] = res
	return res
}

// --- in-memory facts (single process, so objects are shared pointers) ---

func copyFact(dst, src analysis.Fact) {
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(src).Elem())
}

func (ld *loader) exportObjectFact(obj types.Object, fact analysis.Fact) {
	m := ld.objFacts[obj]
	if m == nil {
		m = map[reflect.Type]analysis.Fact{}
		ld.objFacts[obj] = m
	}
	m[reflect.TypeOf(fact)] = fact
}

func (ld *loader) importObjectFact(obj types.Object, fact analysis.Fact) bool {
	if have, ok := ld.objFacts[obj][reflect.TypeOf(fact)]; ok {
		copyFact(fact, have)
		return true
	}
	return false
}

func (ld *loader) exportPackageFact(pkg *types.Package, fact analysis.Fact) {
	m := ld.pkgFacts[pkg]
	if m == nil {
		m = map[reflect.Type]analysis.Fact{}
		ld.pkgFacts[pkg] = m
	}
	m[reflect.TypeOf(fact)] = fact
}

func (ld *loader) importPackageFact(pkg *types.Package, fact analysis.Fact) bool {
	if have, ok := ld.pkgFacts[pkg][reflect.TypeOf(fact)]; ok {
		copyFact(fact, have)
		return true
	}
	return false
}

func (ld *loader) allObjectFacts() []analysis.ObjectFact {
	var out []analysis.ObjectFact
	for obj, m := range ld.objFacts {
		for _, f := range m {
			out = append(out, analysis.ObjectFact{Object: obj, Fact: f})
		}
	}
	return out
}

func (ld *loader) allPackageFacts() []analysis.PackageFact {
	var out []analysis.PackageFact
	for pkg, m := range ld.pkgFacts {
		for _, f := range m {
			out = append(out, analysis.PackageFact{Package: pkg, Fact: f})
		}
	}
	return out
}

// --- want-comment matching ---

type wantKey struct {
	file string
	line int
}

var wantRE = regexp.MustCompile("//\\s*want\\s+(.*)$")
var quotedRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// checkWants verifies diags against pkg's // want comments: every
// diagnostic needs a matching want on its line, every want needs a
// diagnostic.
func checkWants(t *testing.T, fset *token.FileSet, pkg *lpkg, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[wantKey][]*regexp.Regexp{}
	for _, f := range pkg.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := wantKey{pos.Filename, pos.Line}
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants[key] = append(wants[key], rx)
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := wantKey{pos.Filename, pos.Line}
		matched := false
		for i, rx := range wants[key] {
			if rx != nil && rx.MatchString(d.Message) {
				wants[key][i] = nil // consumed
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for key, rxs := range wants {
		for _, rx := range rxs {
			if rx != nil {
				t.Errorf("%s:%d: want %q: no diagnostic reported", key.file, key.line, rx)
			}
		}
	}
}

// Package common holds the small shared vocabulary of the maybms-vet
// analyzers: package scoping by import-path suffix, engine/storage type
// matching, and the //maybms:* comment directives that mark intentional
// exceptions to the checked invariants (docs/static-analysis.md).
package common

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Directive names recognized in //maybms:<name> comments. A directive
// applies to the statement on its own line, to the statement on the line
// directly below it, or — for function-scoped directives — anywhere in the
// function's doc comment.
const (
	// DirArenaHandoff marks an engine.AcquireArena call whose result is
	// deliberately handed to another owner that will release it.
	DirArenaHandoff = "arena-handoff"
	// DirUnguarded marks a function whose row sweeps intentionally run
	// without a cancellation Guard (boot-time fingerprints, memory probes,
	// the differential oracle). A reason is required after the directive.
	DirUnguarded = "unguarded"
	// DirAnyOrder marks a map range whose body is provably order-insensitive
	// (pure counting, building another map). A reason is required.
	DirAnyOrder = "any-order"
	// DirDeterministic marks a function outside the always-checked packages
	// whose output must not depend on map iteration order; detmap checks it.
	DirDeterministic = "deterministic"
	// DirRawError exempts a function (doc comment) or a statement (own or
	// preceding line) from walerr: the code deliberately propagates or
	// discards a raw fs-op error. Only the fault-injection shim qualifies —
	// it must stay byte-transparent to the filesystem it wraps. A reason is
	// required.
	DirRawError = "raw-error"
)

const prefix = "//maybms:"

// IsTestFile reports whether pos lies in a _test.go file. The analyzers
// check production invariants; tests iterate maps and skip guards freely.
func IsTestFile(pass *analysis.Pass, pos token.Pos) bool {
	f := pass.Fset.File(pos)
	return f == nil || strings.HasSuffix(f.Name(), "_test.go")
}

// PkgHasSuffix reports whether the package under analysis lives at an
// import path ending in one of the given suffixes ("internal/engine",
// "internal/storage", ...). Suffix matching keeps the analyzers working on
// both the real module paths and the analyzers' own testdata trees.
func PkgHasSuffix(pass *analysis.Pass, suffixes ...string) bool {
	return PathHasSuffix(pass.Pkg.Path(), suffixes...)
}

// PathHasSuffix reports whether path ends in one of the given
// path-component suffixes.
func PathHasSuffix(path string, suffixes ...string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// NamedFrom unwraps pointers and aliases and reports whether t is a named
// type with one of the given names declared in a package whose import path
// ends in pkgSuffix.
func NamedFrom(t types.Type, pkgSuffix string, names ...string) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || !PathHasSuffix(obj.Pkg().Path(), pkgSuffix) {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

// Directives indexes the //maybms:* comments of one file by line.
type Directives struct {
	fset  *token.FileSet
	lines map[int][]string // line -> directive names on that line
}

// FileDirectives collects the //maybms:* directives of file.
func FileDirectives(fset *token.FileSet, file *ast.File) *Directives {
	d := &Directives{fset: fset, lines: map[int][]string{}}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			name, ok := directiveName(c.Text)
			if !ok {
				continue
			}
			line := fset.Position(c.Pos()).Line
			d.lines[line] = append(d.lines[line], name)
		}
	}
	return d
}

func directiveName(text string) (string, bool) {
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	rest := text[len(prefix):]
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest, rest != ""
}

// At reports whether directive name is present on the line of pos or on the
// line directly above it.
func (d *Directives) At(pos token.Pos, name string) bool {
	line := d.fset.Position(pos).Line
	return d.onLine(line, name) || d.onLine(line-1, name)
}

func (d *Directives) onLine(line int, name string) bool {
	for _, n := range d.lines[line] {
		if n == name {
			return true
		}
	}
	return false
}

// FuncHas reports whether the doc comment of fn carries directive name.
// fn may be an *ast.FuncDecl; func literals have no doc comment and always
// report false.
func FuncHas(fn ast.Node, name string) bool {
	decl, ok := fn.(*ast.FuncDecl)
	if !ok || decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if n, ok := directiveName(c.Text); ok && n == name {
			return true
		}
	}
	return false
}

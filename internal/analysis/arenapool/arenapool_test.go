package arenapool_test

import (
	"testing"

	"maybms/internal/analysis/arenapool"
	"maybms/internal/analysis/internal/vettest"
)

func TestArenaPool(t *testing.T) {
	vettest.Run(t, vettest.TestData(), arenapool.Analyzer, "a.example/client")
}

// Package engine is a miniature double of maybms/internal/engine: just the
// pooled-arena lifecycle that arenapool keys on.
package engine

type Snapshot struct{}

type Arena struct{ used bool }

func AcquireArena(sn *Snapshot) *Arena { return &Arena{} }

func ReleaseArena(a *Arena) {}

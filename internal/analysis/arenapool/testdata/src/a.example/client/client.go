// Package client exercises the arenapool lifecycle rules against the fake
// engine package.
package client

import (
	"errors"

	"a.example/internal/engine"
)

var errBind = errors.New("bind failed")

// leakOnError releases on the happy path but leaks on the early return.
func leakOnError(sn *engine.Snapshot, fail bool) error {
	a := engine.AcquireArena(sn) // want "not released on the path to the return at line"
	if fail {
		return errBind
	}
	engine.ReleaseArena(a)
	return nil
}

// discarded never even binds the arena.
func discarded(sn *engine.Snapshot) {
	engine.AcquireArena(sn) // want "result of engine.AcquireArena is discarded"
}

// blanked throws the arena away explicitly.
func blanked(sn *engine.Snapshot) {
	_ = engine.AcquireArena(sn) // want "result of engine.AcquireArena is discarded"
}

// deferred is the canonical compliant shape.
func deferred(sn *engine.Snapshot, fail bool) error {
	a := engine.AcquireArena(sn)
	defer engine.ReleaseArena(a)
	if fail {
		return errBind
	}
	return nil
}

// conditionalKeep mirrors runEngineConf: a deferred closure releases unless
// ownership was transferred.
func conditionalKeep(sn *engine.Snapshot, fail bool) error {
	a := engine.AcquireArena(sn)
	keep := false
	defer func() {
		if !keep {
			engine.ReleaseArena(a)
		}
	}()
	if fail {
		return errBind
	}
	keep = true
	return nil
}

// allPaths releases explicitly on every path.
func allPaths(sn *engine.Snapshot, fail bool) error {
	a := engine.AcquireArena(sn)
	if fail {
		engine.ReleaseArena(a)
		return errBind
	}
	engine.ReleaseArena(a)
	return nil
}

// rows carries the release obligation for its arena.
type rows struct {
	arena *engine.Arena
}

// handoffStruct transfers ownership into a result structure, the
// Rows.Close pattern of the session API.
func handoffStruct(sn *engine.Snapshot) *rows {
	a := engine.AcquireArena(sn)
	return &rows{arena: a}
}

// handoffReturn transfers ownership to the caller.
func handoffReturn(sn *engine.Snapshot) *engine.Arena {
	a := engine.AcquireArena(sn)
	return a
}

// handoffDirective marks a transfer the analyzer cannot see (the callee
// takes ownership).
func handoffDirective(sn *engine.Snapshot) {
	//maybms:arena-handoff fixture: adoptArena takes ownership
	adoptArena(engine.AcquireArena(sn))
}

var adopted *engine.Arena

func adoptArena(a *engine.Arena) { adopted = a }

// borrowIsNotHandoff passes the arena to a callee and then forgets it:
// borrows do not discharge the obligation, so the leak is caught.
func borrowIsNotHandoff(sn *engine.Snapshot) {
	a := engine.AcquireArena(sn) // want "not released on the path to the return at line"
	inspect(a)
}

func inspect(a *engine.Arena) {}

// Package arenapool checks the pooled-arena lifecycle invariant:
// every engine.AcquireArena must be paired with engine.ReleaseArena on
// every control-flow path, or the arena must be handed to a new owner
// (stored into a result structure, returned, or sent away) that carries
// the release obligation — the Rows.Close path of the session API.
//
// PR 6 and PR 9 both fixed hand-found leaks of exactly this shape (a
// cursor closed mid-fetch, an error path that skipped the release); the
// serving layer even counts releases (engine.ArenaReleases) to assert the
// invariant dynamically. This analyzer makes it a compile-time property.
//
// Recognized discharge of the obligation, per acquired variable:
//
//   - a call engine.ReleaseArena(a) on the path;
//   - defer engine.ReleaseArena(a), or a deferred closure that mentions a
//     and calls ReleaseArena (the conditional-keep pattern of runEngineConf);
//   - ownership handoff: a is returned, stored into a composite literal,
//     assigned to a field/element/another variable, or sent on a channel;
//   - an explicit //maybms:arena-handoff directive on the acquire line,
//     for transfers the analyzer cannot see.
//
// Passing a as a plain argument to a function is NOT a handoff: every
// in-tree callee (plan.Run, Stats, PossibleP, ...) borrows the arena, and
// treating borrows as transfers would hide real leaks. A genuine
// ownership-taking callee must be marked with the directive.
package arenapool

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	"maybms/internal/analysis/internal/common"
)

const doc = `check that every engine.AcquireArena is released or handed off on all paths

Pooled arenas hold the engine's result relations and components; a leaked
arena is memory the pool never gets back and a release counter the serving
layer's budget ledger never decrements. Pair AcquireArena with
ReleaseArena (directly or deferred), hand the arena to an owning structure,
or mark an intentional transfer with //maybms:arena-handoff.`

// Analyzer is the arenapool pass.
var Analyzer = &analysis.Analyzer{
	Name:     "arenapool",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	dirs := map[*ast.File]*common.Directives{}
	fileOf := func(pos token.Pos) *ast.File {
		for _, f := range pass.Files {
			if f.FileStart <= pos && pos < f.FileEnd {
				return f
			}
		}
		return nil
	}

	nodeFilter := []ast.Node{(*ast.CallExpr)(nil)}
	insp.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		if !isEngineCall(pass, call, "AcquireArena") {
			return true
		}
		if common.IsTestFile(pass, call.Pos()) {
			return true
		}
		file := fileOf(call.Pos())
		if file == nil {
			return true
		}
		d, ok := dirs[file]
		if !ok {
			d = common.FileDirectives(pass.Fset, file)
			dirs[file] = d
		}
		if d.At(call.Pos(), common.DirArenaHandoff) {
			return true
		}
		checkAcquire(pass, cfgs, call, stack)
		return true
	})
	return nil, nil
}

// isEngineCall reports whether call invokes the engine function (or the
// maybms package-level alias var) of the given name.
func isEngineCall(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	switch obj.(type) {
	case *types.Func:
		return common.PathHasSuffix(obj.Pkg().Path(), "internal/engine")
	case *types.Var:
		// The root package republishes the lifecycle as alias vars
		// (maybms.AcquireArena / maybms.ReleaseArena).
		sig, ok := obj.Type().(*types.Signature)
		return ok && sig != nil
	}
	return false
}

// checkAcquire analyzes one AcquireArena call given its ancestor stack.
func checkAcquire(pass *analysis.Pass, cfgs *ctrlflow.CFGs, call *ast.CallExpr, stack []ast.Node) {
	// Walk up past parenthesis to the statement consuming the result.
	var parent ast.Node
	for i := len(stack) - 2; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		parent = stack[i]
		break
	}
	switch p := parent.(type) {
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(), "result of engine.AcquireArena is discarded: the arena leaks from the pool")
		return
	case *ast.AssignStmt:
		if len(p.Lhs) != 1 {
			return
		}
		id, ok := p.Lhs[0].(*ast.Ident)
		if !ok {
			return // stored straight into a field/element: handoff
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(), "result of engine.AcquireArena is discarded: the arena leaks from the pool")
			return
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			return
		}
		checkVar(pass, cfgs, call, p, obj, stack)
	default:
		// Return value flows directly into a composite literal, a return
		// statement, another call, etc. — an immediate handoff.
	}
}

// checkVar verifies that variable obj (holding the acquired arena, assigned
// by stmt) is released or handed off on every path of its enclosing
// function.
func checkVar(pass *analysis.Pass, cfgs *ctrlflow.CFGs, call *ast.CallExpr, stmt *ast.AssignStmt, obj types.Object, stack []ast.Node) {
	fn, body := enclosingFunc(stack)
	if body == nil {
		return
	}

	// Deferred release anywhere in the enclosing function discharges the
	// obligation on every path, including panics.
	deferred := false
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok || deferred {
			return !deferred
		}
		if releasesObj(pass, d.Call, obj) {
			deferred = true
			return false
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			if mentionsObj(pass, lit.Body, obj) && callsRelease(pass, lit.Body) {
				deferred = true
				return false
			}
		}
		return true
	})
	if deferred {
		return
	}

	var g *cfg.CFG
	switch f := fn.(type) {
	case *ast.FuncDecl:
		g = cfgs.FuncDecl(f)
	case *ast.FuncLit:
		g = cfgs.FuncLit(f)
	}
	if g == nil {
		return
	}

	if ret := leakPath(pass, g, stmt, obj); ret != nil {
		pass.Reportf(call.Pos(),
			"arena acquired here is not released on the path to the return at line %d (add engine.ReleaseArena, defer it, or mark the transfer with //maybms:arena-handoff)",
			pass.Fset.Position(ret.Pos()).Line)
	}
}

// enclosingFunc returns the innermost function declaration or literal on
// the stack, with its body.
func enclosingFunc(stack []ast.Node) (ast.Node, *ast.BlockStmt) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f, f.Body
		case *ast.FuncLit:
			return f, f.Body
		}
	}
	return nil, nil
}

// leakPath searches the CFG for a path from the acquiring statement to a
// return that neither releases nor hands off obj; it returns the offending
// return statement, or nil if every path discharges the obligation.
func leakPath(pass *analysis.Pass, g *cfg.CFG, acquire ast.Stmt, obj types.Object) *ast.ReturnStmt {
	// Locate the block and node index of the acquire.
	var start *cfg.Block
	startIdx := -1
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n == acquire {
				start, startIdx = b, i
				break
			}
		}
		if start != nil {
			break
		}
	}
	if start == nil {
		return nil
	}

	// memo: block index -> leaky return reachable from the block's start
	// without discharging; nil means all paths discharge.
	memo := map[*cfg.Block]*ast.ReturnStmt{}
	visiting := map[*cfg.Block]bool{}

	var fromBlockStart func(b *cfg.Block) *ast.ReturnStmt
	scan := func(b *cfg.Block, from int) (*ast.ReturnStmt, bool) {
		for _, n := range b.Nodes[from:] {
			if discharges(pass, n, obj) {
				return nil, true // obligation met on this path
			}
		}
		if ret := b.Return(); ret != nil {
			return ret, true // reached an exit without discharging
		}
		return nil, false
	}
	fromBlockStart = func(b *cfg.Block) *ast.ReturnStmt {
		if r, ok := memo[b]; ok {
			return r
		}
		if visiting[b] {
			return nil // loop back-edge: no new exits on this path
		}
		visiting[b] = true
		defer func() { visiting[b] = false }()
		if ret, done := scan(b, 0); done {
			memo[b] = ret
			return ret
		}
		for _, s := range b.Succs {
			if ret := fromBlockStart(s); ret != nil {
				memo[b] = ret
				return ret
			}
		}
		memo[b] = nil
		return nil
	}

	// The acquire's own block: scan only after the acquire statement.
	if ret, done := scan(start, startIdx+1); done {
		return ret
	}
	for _, s := range start.Succs {
		if ret := fromBlockStart(s); ret != nil {
			return ret
		}
	}
	return nil
}

// discharges reports whether CFG node n releases or hands off obj.
func discharges(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		switch x := x.(type) {
		case *ast.CallExpr:
			if releasesObj(pass, x, obj) {
				found = true
				return false
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if usesObj(pass, res, obj) {
					found = true
					return false
				}
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if usesObj(pass, el, obj) {
					found = true
					return false
				}
			}
		case *ast.SendStmt:
			if usesObj(pass, x.Value, obj) {
				found = true
				return false
			}
		case *ast.AssignStmt:
			// obj on the RHS: stored into a field, element, or another
			// variable — the new location owns it now. obj on the LHS:
			// re-pointed; the old arena's obligation moved elsewhere
			// before, or this is a fresh acquire checked separately.
			for _, r := range x.Rhs {
				if isObjExpr(pass, r, obj) {
					found = true
					return false
				}
			}
			for _, l := range x.Lhs {
				if isObjExpr(pass, l, obj) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// releasesObj reports whether call is engine.ReleaseArena(obj) — or, when
// obj is nil, any ReleaseArena call at all.
func releasesObj(pass *analysis.Pass, call *ast.CallExpr, obj types.Object) bool {
	if !isEngineCall(pass, call, "ReleaseArena") {
		return false
	}
	if obj == nil {
		return true
	}
	return len(call.Args) == 1 && isObjExpr(pass, call.Args[0], obj)
}

func callsRelease(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && releasesObj(pass, call, nil) {
			found = true
		}
		return !found
	})
	return found
}

// isObjExpr reports whether e (modulo parens) is an identifier bound to obj.
func isObjExpr(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && pass.TypesInfo.ObjectOf(id) == obj
}

// usesObj reports whether the expression mentions obj anywhere, except as
// the receiver of a method call (a borrow, not a transfer).
func usesObj(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// mentionsObj reports whether body references obj at all.
func mentionsObj(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// Package guardloop checks the cooperative-cancellation invariant of the
// query engine: hot loops over tuple rows and component local worlds in
// internal/engine and internal/shard must tick the cancellation Guard
// (engine.Guard.Tick/Check or Arena.tick), so a canceled or over-budget
// query stops inside the loop instead of grinding to completion.
//
// Confidence computation is exponential in the worst case (Section 6 of the
// paper); PR 9 threaded counter-amortized guard checkpoints through every
// operator precisely so the serving layer can kill a runaway query. The
// invariant is load-bearing but purely conventional — a new operator that
// forgets to tick compiles, passes every functional test, and ships an
// uncancellable code path. This analyzer closes that hole:
//
//   - a loop ranging over row-typed data (engine.CompRow local worlds,
//     pre-fold TupleMasses / TupleConf tables, tuple-level view rows) in a
//     function with a Guard in scope (a *Guard or *Arena parameter,
//     receiver, or local) must contain a guard checkpoint, directly or in
//     an enclosing loop of the same function;
//   - such a loop in a function with no Guard in scope is an uncancellable
//     sweep: either thread a *Guard through (preferred for anything on a
//     query path) or document the exemption with //maybms:unguarded <why>
//     in the function's doc comment (boot-time fingerprints, memory
//     probes, the differential oracle).
package guardloop

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"maybms/internal/analysis/internal/common"
)

const doc = `check that row-sweeping loops in engine/shard tick the cancellation Guard

A loop over component local worlds or confidence-fold tables that never
calls Guard.Tick/Check (or Arena.tick) is uncancellable: the request
context, the memory budget, and the shard scheduler's first-failure abort
are all invisible to it. Tick in the loop (or an enclosing loop), thread a
*Guard through, or mark an intentionally unguarded sweep with
//maybms:unguarded <reason> on the function.`

// rowTypeNames are the engine types whose slices constitute a row sweep:
// component local worlds, pre-fold and folded confidence tables, and the
// tuple-level view's row and group forms.
var rowTypeNames = []string{"CompRow", "TupleMasses", "TupleConf", "tlRow", "tlGroup"}

// Analyzer is the guardloop pass.
var Analyzer = &analysis.Analyzer{
	Name:     "guardloop",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !common.PkgHasSuffix(pass, "internal/engine", "internal/shard") {
		return nil, nil
	}
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{(*ast.RangeStmt)(nil)}
	insp.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		rng := n.(*ast.RangeStmt)
		if common.IsTestFile(pass, rng.Pos()) {
			return false
		}
		if !isRowSweep(pass, rng) {
			return true
		}
		fn, body := enclosingFunc(stack)
		if body == nil {
			return true
		}
		if common.FuncHas(fn, common.DirUnguarded) {
			return true
		}
		// A checkpoint in this loop's body, or in the body of any enclosing
		// loop of the same function, covers the sweep: the enclosing loop's
		// tick fires at least once per outer iteration.
		if containsTick(pass, rng.Body) {
			return true
		}
		for _, anc := range stack {
			if encl := loopBody(anc); encl != nil && encl != rng.Body && containsTick(pass, encl) {
				return true
			}
		}
		if guardInScope(pass, fn, body) {
			pass.Reportf(rng.Pos(),
				"row sweep without a guard checkpoint: call Tick/Check in this loop (a Guard is in scope), or an enclosing loop")
		} else {
			pass.Reportf(rng.Pos(),
				"uncancellable row sweep: no *Guard in scope — thread one through, or document with //maybms:unguarded <reason> on the function")
		}
		return true
	})
	return nil, nil
}

// isRowSweep reports whether rng ranges over a slice (or array) of one of
// the engine's row types.
func isRowSweep(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return false
	}
	t := tv.Type.Underlying()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem().Underlying()
	}
	var elem types.Type
	switch seq := t.(type) {
	case *types.Slice:
		elem = seq.Elem()
	case *types.Array:
		elem = seq.Elem()
	default:
		return false
	}
	return common.NamedFrom(elem, "internal/engine", rowTypeNames...)
}

// containsTick reports whether body contains a guard checkpoint call:
// a method named Tick, Check, or tick on a *Guard or *Arena.
func containsTick(pass *analysis.Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Tick", "Check", "tick":
		default:
			return true
		}
		if rtv, ok := pass.TypesInfo.Types[sel.X]; ok &&
			common.NamedFrom(rtv.Type, "internal/engine", "Guard", "Arena") {
			found = true
			return false
		}
		return true
	})
	return found
}

// loopBody returns the body of n if n is a loop statement.
func loopBody(n ast.Node) *ast.BlockStmt {
	switch l := n.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// enclosingFunc returns the outermost enclosing function declaration (or
// outermost literal when the loop sits in a package-level func value) and
// its body. The outermost declaration is the unit of the invariant: its
// doc comment carries the //maybms:unguarded directive, and a guard
// anywhere in it is capturable by the closures it spawns.
func enclosingFunc(stack []ast.Node) (ast.Node, *ast.BlockStmt) {
	for _, n := range stack {
		switch f := n.(type) {
		case *ast.FuncDecl:
			return f, f.Body
		case *ast.FuncLit:
			return f, f.Body
		}
	}
	return nil, nil
}

// guardInScope reports whether a *engine.Guard or *engine.Arena is
// denotable in fn: a receiver, a parameter, or any identifier of that type
// in the function body (covering locals like `guard := guardOf(v)`).
func guardInScope(pass *analysis.Pass, fn ast.Node, body *ast.BlockStmt) bool {
	isGuardish := func(t types.Type) bool {
		return common.NamedFrom(t, "internal/engine", "Guard", "Arena")
	}
	var fields []*ast.FieldList
	switch decl := fn.(type) {
	case *ast.FuncDecl:
		fields = append(fields, decl.Recv, decl.Type.Params)
	case *ast.FuncLit:
		fields = append(fields, decl.Type.Params)
	}
	for _, fl := range fields {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			if tv, ok := pass.TypesInfo.Types[f.Type]; ok && isGuardish(tv.Type) {
				return true
			}
		}
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				if _, isVar := obj.(*types.Var); isVar && isGuardish(obj.Type()) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// Package other is outside guardloop's scope (not internal/engine or
// internal/shard): identical sweeps produce no diagnostics here.
package other

import "g.example/internal/engine"

func SweepFreely(rows []engine.CompRow) float64 {
	var s float64
	for _, r := range rows {
		s += r.P
	}
	return s
}

// Package shard exercises guardloop's second scoped package: sweeps over
// engine row types are checked here too.
package shard

import "g.example/internal/engine"

// mergeNoGuard sweeps a pre-fold table with no guard: flagged.
func mergeNoGuard(parts [][]engine.TupleMasses) int {
	n := 0
	for _, part := range parts {
		for _, tm := range part { // want "uncancellable row sweep"
			n += len(tm.Masses)
		}
	}
	return n
}

// fingerprint is a documented boot-time exemption.
//
//maybms:unguarded fixture: boot-time fingerprint, no guard exists yet
func fingerprint(rows []engine.CompRow) int {
	n := 0
	for range rows {
		n++
	}
	return n
}

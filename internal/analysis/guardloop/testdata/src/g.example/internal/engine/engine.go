// Package engine is a miniature double of maybms/internal/engine carrying
// just the names guardloop keys on: the row types and the Guard/Arena tick
// surface. No row sweeps live in this file.
package engine

type CompRow struct{ P float64 }

type TupleMasses struct{ Masses []float64 }

type TupleConf struct{ Conf float64 }

type tlRow struct{ cols []int }

type Guard struct{ n int }

func (g *Guard) Tick() error  { return nil }
func (g *Guard) Check() error { return nil }

type Arena struct{ guard *Guard }

func (a *Arena) tick() error { return a.guard.Tick() }

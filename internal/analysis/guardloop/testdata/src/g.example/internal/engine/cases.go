package engine

// sweepNoTick has a guard in scope but never ticks: flagged.
func sweepNoTick(g *Guard, rows []CompRow) float64 {
	var s float64
	for _, r := range rows { // want "row sweep without a guard checkpoint"
		s += r.P
	}
	_ = g
	return s
}

// sweepNoGuard has no guard anywhere: the uncancellable variant.
func sweepNoGuard(rows []CompRow) float64 {
	var s float64
	for _, r := range rows { // want "uncancellable row sweep"
		s += r.P
	}
	return s
}

// sweepTicking checkpoints inside the loop: compliant.
func sweepTicking(g *Guard, rows []CompRow) error {
	for range rows {
		if err := g.Tick(); err != nil {
			return err
		}
	}
	return nil
}

// sweepOuterTick checkpoints in the enclosing loop, which fires at least
// once per inner sweep: compliant.
func sweepOuterTick(g *Guard, parts [][]TupleMasses) (float64, error) {
	var s float64
	for _, part := range parts {
		if err := g.Tick(); err != nil {
			return 0, err
		}
		for _, tm := range part {
			s += tm.Masses[0]
		}
	}
	return s, nil
}

// sweepArenaTick uses the arena's amortized tick: compliant.
func sweepArenaTick(a *Arena, rows []CompRow) error {
	for range rows {
		if err := a.tick(); err != nil {
			return err
		}
	}
	return nil
}

// sweepLocalGuard materializes a guard locally but forgets the tick: the
// in-scope message fires because the guard is right there.
func sweepLocalGuard(rows []CompRow) int {
	g := &Guard{}
	n := 0
	for range rows { // want "row sweep without a guard checkpoint"
		n++
	}
	_ = g
	return n
}

// sweepExempt documents an intentional unguarded sweep.
//
//maybms:unguarded fixture: bounded debug sweep, never on a query path
func sweepExempt(rows []CompRow) int {
	n := 0
	for range rows {
		n++
	}
	return n
}

// sweepClosure: the directive sits on the outermost declaration and covers
// sweeps inside closures too.
//
//maybms:unguarded fixture: oracle helper
func sweepClosure(rows []tlRow) func() int {
	return func() int {
		n := 0
		for _, r := range rows {
			n += len(r.cols)
		}
		return n
	}
}

// notARowSweep ranges over plain data: outside the invariant.
func notARowSweep(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

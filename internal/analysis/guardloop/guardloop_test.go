package guardloop_test

import (
	"testing"

	"maybms/internal/analysis/guardloop"
	"maybms/internal/analysis/internal/vettest"
)

func TestGuardLoop(t *testing.T) {
	vettest.Run(t, vettest.TestData(), guardloop.Analyzer,
		"g.example/internal/engine",
		"g.example/internal/shard",
		"g.example/other", // out of scope: must stay silent
	)
}

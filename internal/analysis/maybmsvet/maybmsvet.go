// Package maybmsvet aggregates the project's analyzers — the rule set of
// cmd/maybms-vet. Keeping the list here lets the driver binary and the
// analyzers' integration tests share one definition.
package maybmsvet

import (
	"golang.org/x/tools/go/analysis"

	"maybms/internal/analysis/arenapool"
	"maybms/internal/analysis/detmap"
	"maybms/internal/analysis/guardloop"
	"maybms/internal/analysis/walerr"
)

// Analyzers is the full maybms-vet suite, in diagnostic-name order. Each
// analyzer machine-checks one load-bearing convention of the engine; the
// catalog of what they protect (and which PR introduced each convention)
// is docs/static-analysis.md.
var Analyzers = []*analysis.Analyzer{
	arenapool.Analyzer,
	detmap.Analyzer,
	guardloop.Analyzer,
	walerr.Analyzer,
}

// Package other is outside walerr's scope (not internal/storage): the
// durability rules do not apply here.
package other

import "w.example/internal/storage"

func DropFreely(f storage.File) {
	f.Sync()
}

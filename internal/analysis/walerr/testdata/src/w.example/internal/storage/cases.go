package storage

import "fmt"

// discardSync drops an fsync error on the floor: rule 1.
func discardSync(f File) {
	f.Sync() // want "error of File.Sync is discarded"
}

// blankWrite discards explicitly: rule 1.
func blankWrite(f File, p []byte) {
	_, _ = f.Write(p) // want "error of File.Write is assigned to _"
}

// deferredSync can never surface its error: rule 1.
func deferredSync(f File) {
	defer f.Sync() // want "error of deferred File.Sync is discarded"
}

// bareReturnIf propagates the raw error from the if-init form: rule 2.
func bareReturnIf(f File) error {
	if err := f.Sync(); err != nil {
		return err // want "error of File.Sync returned without context"
	}
	return nil
}

// bareReturnBlock propagates the raw error from the adjacent-statement
// form: rule 2.
func bareReturnBlock(fsys FS, oldpath, newpath string) error {
	err := fsys.Rename(oldpath, newpath)
	if err != nil {
		return err // want "error of FS.Rename returned without context"
	}
	return nil
}

// bareReturnMulti propagates through a multi-result return: rule 2.
func bareReturnMulti(fsys FS, name string) (File, error) {
	f, err := fsys.OpenFile(name)
	if err != nil {
		return nil, err // want "error of FS.OpenFile returned without context"
	}
	return f, nil
}

// wrapped adds context with %w: compliant.
func wrapped(f File) error {
	if err := f.Sync(); err != nil {
		return fmt.Errorf("storage: syncing journal: %w", err)
	}
	return nil
}

// typedHelper wraps through the storage helper: compliant.
func typedHelper(f File, p []byte) error {
	if _, err := f.Write(p); err != nil {
		return truncated(err)
	}
	return nil
}

// reassigned rebinds err before returning it: no longer the raw fs error.
func reassigned(f File) error {
	if err := f.Sync(); err != nil {
		err = fmt.Errorf("storage: syncing journal: %w", err)
		return err
	}
	return nil
}

// checkedElsewhere handles the error without returning it: compliant.
func checkedElsewhere(f File) bool {
	if err := f.Truncate(0); err != nil {
		return false
	}
	return true
}

// passthrough is the fault-shim escape: its doc directive exempts the
// whole function.
//
//maybms:raw-error fixture: transparent shim, base FS errors pass through unchanged
func passthrough(fsys FS, name string) (File, error) {
	f, err := fsys.OpenFile(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// tornWrite uses the line-level escape for a deliberate discard.
func tornWrite(f File, p []byte) (int, error) {
	//maybms:raw-error fixture: deliberate torn write, injected error supersedes
	n, _ := f.Write(p[:1])
	return n, ErrTruncated
}

// Package storage is a miniature double of maybms/internal/storage: the FS
// seam and a typed error, which is all walerr keys on.
package storage

import "errors"

// ErrTruncated mimics the typed storage errors.
var ErrTruncated = errors.New("truncated")

// FS is the filesystem seam.
type FS interface {
	OpenFile(name string) (File, error)
	Rename(oldpath, newpath string) error
}

// File is one open file on the seam.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Truncate(size int64) error
	Close() error
}

// truncated mimics the storage helper that wraps short reads.
func truncated(err error) error {
	return errors.Join(ErrTruncated, err)
}

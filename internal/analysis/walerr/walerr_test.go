package walerr_test

import (
	"testing"

	"maybms/internal/analysis/internal/vettest"
	"maybms/internal/analysis/walerr"
)

func TestWalErr(t *testing.T) {
	vettest.Run(t, vettest.TestData(), walerr.Analyzer,
		"w.example/internal/storage",
		"w.example/other", // out of scope: must stay silent
	)
}

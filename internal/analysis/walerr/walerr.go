// Package walerr checks the durability layer's error discipline: in
// internal/storage, the errors of filesystem operations — Write, Sync,
// Truncate, Rename and friends, on the storage.FS/File seam, *os.File, or
// a buffered writer over them — must be (1) checked, never discarded, and
// (2) propagated with context, never returned bare.
//
// The WAL's crash-safety argument (docs/snapshot-format.md#wal) rests on
// this: Append acknowledges a record only after write+fsync succeed, a
// failed append is truncated away or the log poisons itself, and every
// failure surfaces to the caller wrapped so the serving layer can map it.
// A single dropped fsync error silently converts "durable" into "probably
// durable", which is exactly the class of bug the FaultFS suite exists to
// catch dynamically — this analyzer catches it statically.
//
// Rule 1 (discard): an fs-op call used as a statement, or with its error
// assigned to _, is an error. A genuinely best-effort fs write does not
// exist in this layer; the single escape, //maybms:raw-error <reason>, is
// reserved for the fault-injection shim, whose whole point is to forward
// the base filesystem raw (and to produce deliberately torn writes).
//
// Rule 2 (bare return): `return err` where err demonstrably holds the raw
// result of an fs op (the err := op(); if err != nil { return err } and
// the if-init forms) is an error — wrap it (fmt.Errorf with %w and what
// was being attempted, or one of the typed storage errors) so a failed
// boot names the operation that failed, not just the OS's errno text.
package walerr

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"maybms/internal/analysis/internal/common"
)

const doc = `check fs-op error discipline in the durability layer (internal/storage)

Errors from Write/Sync/Truncate/Rename/... on the storage.FS seam must be
checked and wrapped with context before they propagate; a discarded fsync
error is a durability lie, and a bare one loses which operation failed.`

// fsOps are the method names whose error results the analyzer tracks.
// Write-side ops fall under both rules; the read/metadata ops under rule 2
// only (their results cannot be usefully discarded).
var fsOps = map[string]bool{
	"Write": true, "WriteAt": true, "WriteString": true, "Sync": true,
	"Truncate": true, "Rename": true, "Flush": true,
}

var fsOpsReturnOnly = map[string]bool{
	"OpenFile": true, "Open": true, "CreateTemp": true, "Stat": true,
	"Seek": true, "MkdirAll": true, "Remove": true, "ReadDir": true,
	"ReadAt": true, "Read": true,
}

// Analyzer is the walerr pass.
var Analyzer = &analysis.Analyzer{
	Name:     "walerr",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !common.PkgHasSuffix(pass, "internal/storage") {
		return nil, nil
	}
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	dirs := map[*ast.File]*common.Directives{}
	// exempt reports whether n sits under a //maybms:raw-error escape: on
	// its own (or the preceding) line, or in the doc comment of the
	// enclosing function. The only legitimate user is the fault-injection
	// shim, which must pass the base filesystem's errors through unchanged.
	exempt := func(n ast.Node, stack []ast.Node) bool {
		for _, anc := range stack {
			if fd, ok := anc.(*ast.FuncDecl); ok && common.FuncHas(fd, common.DirRawError) {
				return true
			}
			if f, ok := anc.(*ast.File); ok {
				d, ok := dirs[f]
				if !ok {
					d = common.FileDirectives(pass.Fset, f)
					dirs[f] = d
				}
				if d.At(n.Pos(), common.DirRawError) {
					return true
				}
			}
		}
		return false
	}

	// Rule 1: discarded errors.
	insp.WithStack([]ast.Node{(*ast.ExprStmt)(nil), (*ast.AssignStmt)(nil), (*ast.GoStmt)(nil), (*ast.DeferStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		if common.IsTestFile(pass, n.Pos()) || exempt(n, stack) {
			return true
		}
		switch s := n.(type) {
		case *ast.ExprStmt:
			if op, ok := fsOpCall(pass, s.X, false); ok {
				pass.Reportf(s.Pos(), "error of %s is discarded: the durability layer checks every fs-op error", op)
			}
		case *ast.GoStmt:
			if op, ok := fsOpCall(pass, s.Call, false); ok {
				pass.Reportf(s.Pos(), "error of %s is discarded: the durability layer checks every fs-op error", op)
			}
		case *ast.DeferStmt:
			if op, ok := fsOpCall(pass, s.Call, false); ok {
				pass.Reportf(s.Pos(), "error of deferred %s is discarded: check it in a deferred closure instead", op)
			}
		case *ast.AssignStmt:
			if len(s.Rhs) != 1 {
				return true
			}
			op, ok := fsOpCall(pass, s.Rhs[0], false)
			if !ok {
				return true
			}
			// The error is the last result; discarded if that LHS is blank.
			last, isIdent := s.Lhs[len(s.Lhs)-1].(*ast.Ident)
			if isIdent && last.Name == "_" {
				pass.Reportf(s.Pos(), "error of %s is assigned to _: the durability layer checks every fs-op error", op)
			}
		}
		return true
	})

	// Rule 2: bare returns of fs-op errors.
	insp.WithStack([]ast.Node{(*ast.IfStmt)(nil), (*ast.BlockStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		if common.IsTestFile(pass, n.Pos()) || exempt(n, stack) {
			return true
		}
		switch s := n.(type) {
		case *ast.IfStmt:
			// if [vars,] err := <fsop>(); err != nil { ... return [..,] err }
			init, ok := s.Init.(*ast.AssignStmt)
			if !ok {
				return true
			}
			checkGuardedReturn(pass, init, s)
		case *ast.BlockStmt:
			// [vars,] err := <fsop>()    (or =)
			// if err != nil { ... return [..,] err }
			for i := 0; i+1 < len(s.List); i++ {
				asg, ok := s.List[i].(*ast.AssignStmt)
				if !ok {
					continue
				}
				ifs, ok := s.List[i+1].(*ast.IfStmt)
				if !ok || ifs.Init != nil {
					continue
				}
				checkGuardedReturn(pass, asg, ifs)
			}
		}
		return true
	})
	return nil, nil
}

// checkGuardedReturn flags `return [..,] err` inside ifs's body when asg
// assigns err from an fs-op call and ifs's condition tests that same err.
func checkGuardedReturn(pass *analysis.Pass, asg *ast.AssignStmt, ifs *ast.IfStmt) {
	if len(asg.Rhs) != 1 {
		return
	}
	op, ok := fsOpCall(pass, asg.Rhs[0], true)
	if !ok {
		return
	}
	errID, ok := asg.Lhs[len(asg.Lhs)-1].(*ast.Ident)
	if !ok || errID.Name == "_" {
		return
	}
	errObj := pass.TypesInfo.ObjectOf(errID)
	if errObj == nil || !isErrorType(errObj.Type()) {
		return
	}
	// Condition must test this err (err != nil or similar mention).
	if !mentions(pass, ifs.Cond, errObj) {
		return
	}
	// ast.Inspect visits in source order, so a reassignment of err stops the
	// scan for everything after it, not just its own subtree.
	stop := false
	ast.Inspect(ifs.Body, func(n ast.Node) bool {
		if stop {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			// err reassigned before a return: no longer the raw fs error.
			for _, l := range x.Lhs {
				if id, ok := l.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == errObj {
					stop = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == errObj {
					pass.Reportf(x.Pos(),
						"error of %s returned without context: wrap it (fmt.Errorf with %%w, a typed storage error, or a helper like truncated) so the failure names the operation",
						op)
					stop = true
					return false
				}
			}
		}
		return true
	})
}

// fsOpCall reports whether e is a call of a tracked fs op on a relevant
// receiver, returning a printable name. returnOnly widens the op set to
// the read/metadata ops tracked by rule 2.
func fsOpCall(pass *analysis.Pass, e ast.Expr, returnOnly bool) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if !fsOps[name] && !(returnOnly && fsOpsReturnOnly[name]) {
		return "", false
	}
	// Package-level os.Rename / os.Remove / ... count as the seam too.
	if pkg, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if pn, isPkg := pass.TypesInfo.ObjectOf(pkg).(*types.PkgName); isPkg {
			if pn.Imported().Path() == "os" {
				return "os." + name, true
			}
			return "", false
		}
	}
	rtv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return "", false
	}
	if !fsReceiver(rtv.Type) {
		return "", false
	}
	return receiverLabel(rtv.Type) + "." + name, true
}

// fsReceiver reports whether t is a filesystem-facing type: the storage
// seam (FS, File, or an implementation like osFS/FaultFS), *os.File, or a
// *bufio.Writer (always buffering one of the former here).
func fsReceiver(t types.Type) bool {
	if common.NamedFrom(t, "internal/storage", "FS", "File", "osFS", "osFile", "FaultFS", "faultFile") {
		return true
	}
	if common.NamedFrom(t, "os", "File") {
		return true
	}
	if common.NamedFrom(t, "bufio", "Writer") {
		return true
	}
	return false
}

func receiverLabel(t types.Type) string {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func mentions(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

package detmap_test

import (
	"strings"
	"testing"

	"maybms/internal/analysis/detmap"
	"maybms/internal/analysis/internal/vettest"
)

func TestDetMap(t *testing.T) {
	diags := vettest.Run(t, vettest.TestData(), detmap.Analyzer,
		"d.example/internal/storage",
		"d.example/emit",
	)

	// The direct-iteration diagnostic must carry a suggested fix rewriting
	// the loop to the collect-and-sort idiom (ordered key type).
	fixed := false
	for _, d := range diags {
		for _, fix := range d.SuggestedFixes {
			for _, e := range fix.TextEdits {
				if strings.Contains(string(e.NewText), "sort.Strings") {
					fixed = true
				}
			}
		}
	}
	if !fixed {
		t.Errorf("no diagnostic carried a collect-and-sort suggested fix")
	}
}

// Package detmap checks the byte-identity invariant of everything the
// system emits or hashes: in determinism-critical code, iterating a Go map
// directly is an error, because map iteration order is randomized per run.
//
// The invariant is what makes snapshot re-saves byte-identical
// (docs/snapshot-format.md), per-shard fingerprints stable across kill -9
// restarts, and sharded CONF() byte-identical to unsharded execution (the
// canonical mass fold). Each of those properties is asserted by tests, but
// only for the code paths the tests happen to cover; this analyzer checks
// the rule itself.
//
// Scope:
//
//   - all of internal/storage and internal/shard (snapshot and WAL
//     emission, partitioning, fingerprints);
//   - any function marked //maybms:deterministic in its doc comment
//     (the canonical fold, state export, EXPLAIN rendering).
//
// Allowed forms inside the scope:
//
//   - for range m {...} with no iteration variables (pure counting);
//   - the collect-and-sort idiom: a range whose body only appends the key
//     to a slice, provided that slice is sorted later in the function;
//   - an explicit //maybms:any-order <reason> directive on the range line
//     for provably order-insensitive bodies (building another map,
//     integer counters).
//
// Everything else gets a diagnostic, with a suggested fix rewriting the
// loop to the collect-and-sort idiom when the key type is ordered.
package detmap

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"maybms/internal/analysis/internal/common"
)

const doc = `check that determinism-critical code never depends on map iteration order

Snapshot bytes, WAL records, shard fingerprints and the canonical
confidence fold must be functions of the store's logical state alone; map
iteration order is randomized and would leak into them. Collect the keys,
sort them, and iterate the sorted slice — or mark a provably
order-insensitive loop with //maybms:any-order <reason>.`

// Analyzer is the detmap pass.
var Analyzer = &analysis.Analyzer{
	Name:     "detmap",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	wholePkg := common.PkgHasSuffix(pass, "internal/storage", "internal/shard")
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	dirs := map[*ast.File]*common.Directives{}
	fileOf := func(pos ast.Node) *ast.File {
		for _, f := range pass.Files {
			if f.FileStart <= pos.Pos() && pos.Pos() < f.FileEnd {
				return f
			}
		}
		return nil
	}

	nodeFilter := []ast.Node{(*ast.RangeStmt)(nil)}
	insp.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		rng := n.(*ast.RangeStmt)
		if common.IsTestFile(pass, rng.Pos()) {
			return false
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		fn, body := enclosingFunc(stack)
		if body == nil {
			return true
		}
		if !wholePkg && !common.FuncHas(fn, common.DirDeterministic) {
			return true
		}
		file := fileOf(rng)
		if file == nil {
			return true
		}
		d, ok := dirs[file]
		if !ok {
			d = common.FileDirectives(pass.Fset, file)
			dirs[file] = d
		}
		if d.At(rng.Pos(), common.DirAnyOrder) {
			return true
		}
		// for range m {} with no variables: the body runs len(m) times in
		// some order, but sees neither key nor value.
		if rng.Key == nil && rng.Value == nil {
			return true
		}
		if keys := collectOnly(pass, rng); keys != nil {
			if sortedLater(pass, body, rng, keys) {
				return true
			}
			pass.Reportf(rng.Pos(),
				"map keys are collected into %q but never sorted: sort before iterating, or the emission order is random",
				keys.Name())
			return true
		}
		diag := analysis.Diagnostic{
			Pos: rng.Pos(),
			Message: "iteration over a map in determinism-critical code: collect and sort the keys first " +
				"(or mark a provably order-insensitive loop with //maybms:any-order <reason>)",
		}
		if fix := sortFix(pass, rng); fix != nil {
			diag.SuggestedFixes = []analysis.SuggestedFix{*fix}
		}
		pass.Report(diag)
		return true
	})
	return nil, nil
}

func enclosingFunc(stack []ast.Node) (ast.Node, *ast.BlockStmt) {
	for _, n := range stack {
		switch f := n.(type) {
		case *ast.FuncDecl:
			return f, f.Body
		case *ast.FuncLit:
			return f, f.Body
		}
	}
	return nil, nil
}

// collectOnly recognizes the first half of the collect-and-sort idiom:
//
//	for k := range m { keys = append(keys, k) }
//
// The body must be exactly one append of the key (the value variable must
// be absent or blank). It returns the slice variable being appended to,
// or nil.
func collectOnly(pass *analysis.Pass, rng *ast.RangeStmt) *types.Var {
	keyID, ok := rng.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" {
		return nil
	}
	if rng.Value != nil {
		if v, ok := rng.Value.(*ast.Ident); !ok || v.Name != "_" {
			return nil
		}
	}
	if len(rng.Body.List) != 1 {
		return nil
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return nil
	}
	dst, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return nil
	}
	if len(call.Args) != 2 {
		return nil
	}
	if a0, ok := call.Args[0].(*ast.Ident); !ok || pass.TypesInfo.ObjectOf(a0) != pass.TypesInfo.ObjectOf(dst) {
		return nil
	}
	a1, ok := call.Args[1].(*ast.Ident)
	if !ok || pass.TypesInfo.ObjectOf(a1) != pass.TypesInfo.ObjectOf(keyID) {
		return nil
	}
	v, _ := pass.TypesInfo.ObjectOf(dst).(*types.Var)
	return v
}

// sortedLater reports whether, after the collection loop, the function
// body passes the keys slice to a sort (any sort.* or slices.Sort* call
// mentioning it).
func sortedLater(pass *analysis.Pass, body *ast.BlockStmt, rng *ast.RangeStmt, keys *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		if pkgName, isPkg := pass.TypesInfo.ObjectOf(pkg).(*types.PkgName); !isPkg ||
			(pkgName.Imported().Path() != "sort" && pkgName.Imported().Path() != "slices") {
			return true
		}
		for _, arg := range call.Args {
			mentions := false
			ast.Inspect(arg, func(x ast.Node) bool {
				if id, ok := x.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == keys {
					mentions = true
				}
				return !mentions
			})
			if mentions {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// sortFix builds a suggested fix rewriting `for k, v := range m {` into the
// collect-and-sort idiom, when the key type is an ordered basic type. The
// fix assumes package sort is (or will be) imported.
func sortFix(pass *analysis.Pass, rng *ast.RangeStmt) *analysis.SuggestedFix {
	mapType, ok := pass.TypesInfo.Types[rng.X].Type.Underlying().(*types.Map)
	if !ok {
		return nil
	}
	basic, ok := mapType.Key().Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsInteger|types.IsFloat|types.IsString) == 0 {
		return nil
	}
	keyID, ok := rng.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" {
		return nil
	}
	mapStr, err := exprString(rng.X)
	if err != nil {
		return nil
	}
	keyType := types.TypeString(mapType.Key(), func(p *types.Package) string { return p.Name() })
	keys := keyID.Name + "Sorted"
	var sortStmt string
	switch {
	case basic.Kind() == types.String:
		sortStmt = fmt.Sprintf("sort.Strings(%s)", keys)
	case basic.Kind() == types.Int:
		sortStmt = fmt.Sprintf("sort.Ints(%s)", keys)
	default:
		sortStmt = fmt.Sprintf("sort.Slice(%s, func(i, j int) bool { return %s[i] < %s[j] })", keys, keys, keys)
	}
	header := fmt.Sprintf("%s := make([]%s, 0, len(%s))\n", keys, keyType, mapStr) +
		fmt.Sprintf("for %s := range %s {\n\t%s = append(%s, %s)\n}\n", keyID.Name, mapStr, keys, keys, keyID.Name) +
		sortStmt + "\n" +
		fmt.Sprintf("for _, %s := range %s {", keyID.Name, keys)
	if rng.Value != nil {
		if v, ok := rng.Value.(*ast.Ident); ok && v.Name != "_" {
			header += fmt.Sprintf("\n%s := %s[%s]", v.Name, mapStr, keyID.Name)
		}
	}
	return &analysis.SuggestedFix{
		Message: "iterate the sorted keys instead",
		TextEdits: []analysis.TextEdit{{
			Pos:     rng.Pos(),
			End:     rng.Body.Lbrace + 1,
			NewText: []byte(header),
		}},
	}
}

// exprString renders a (simple) expression back to source.
func exprString(e ast.Expr) (string, error) {
	var buf bytes.Buffer
	if err := format.Node(&buf, token.NewFileSet(), e); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// Package storage exercises detmap inside an always-checked package: every
// map iteration here must be order-insensitive or sorted.
package storage

import (
	"fmt"
	"sort"
)

// emitDirect leaks map order straight into the output: flagged, with a
// suggested rewrite to the collect-and-sort idiom.
func emitDirect(m map[string]int) []string {
	var out []string
	for k, v := range m { // want "iteration over a map in determinism-critical code"
		out = append(out, fmt.Sprintf("%s=%d", k, v))
	}
	return out
}

// emitSorted is the canonical compliant shape.
func emitSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return out
}

// collectNoSort starts the idiom but never finishes it.
func collectNoSort(m map[int]bool) []int {
	var keys []int
	for k := range m { // want `map keys are collected into "keys" but never sorted`
		keys = append(keys, k)
	}
	return keys
}

// countOnly sees neither key nor value: allowed.
func countOnly(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// invert builds another map, which is itself unordered: the directive
// documents why order cannot leak.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	//maybms:any-order fixture: output is itself an unordered map
	for k, v := range m {
		out[v] = k
	}
	return out
}

// sliceRange is not a map: outside the rule.
func sliceRange(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

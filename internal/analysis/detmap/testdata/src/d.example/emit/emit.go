// Package emit is outside detmap's always-checked packages: only functions
// marked //maybms:deterministic are held to the rule.
package emit

// render is marked deterministic, so its map iteration is flagged.
//
//maybms:deterministic fixture: rendered text is golden-tested
func render(m map[string]string) string {
	s := ""
	for k := range m { // want "iteration over a map in determinism-critical code"
		s += m[k]
	}
	return s
}

// freeForm is unmarked: detmap does not police it.
func freeForm(m map[string]string) string {
	s := ""
	for k := range m {
		s += m[k]
	}
	return s
}

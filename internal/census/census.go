// Package census implements the experimental workload of Section 9: a
// synthetic stand-in for the IPUMS 5% 1990 US census extract (50
// multiple-choice attributes), or-set noise injection at configurable
// densities, the twelve cleaning dependencies of Figure 25, and the six
// queries of Figure 29.
//
// The real IPUMS extract is not redistributable; the generator reproduces
// the properties the experiments exercise: the attribute codes referenced by
// the dependencies and queries, marginal selectivities close to the paper's
// reported result sizes, clean data satisfying the dependencies (so the
// noisy database is never globally inconsistent), and or-sets of size
// [2, min(8, domain)] that always contain the true reading.
package census

import (
	"fmt"
	"math/rand"

	"maybms/internal/engine"
	"maybms/internal/relation"
)

// Attr describes one census attribute: its IPUMS-style name and domain size
// (codes are 0 .. Domain-1).
type Attr struct {
	Name   string
	Domain int32
}

// Attrs is the 50-attribute census schema. The first block contains every
// attribute referenced by Figure 25's dependencies and Figure 29's queries;
// the rest are filler demographics with realistic domain sizes.
var Attrs = []Attr{
	{"AGE", 91}, {"SEX", 2}, {"RACE", 10}, {"MARITAL", 5}, {"RSPOUSE", 7},
	{"FERTIL", 14}, {"SCHOOL", 4}, {"YEARSCH", 18}, {"ENGLISH", 5}, {"LANG1", 3},
	{"POB", 59}, {"POWSTATE", 59}, {"CITIZEN", 5}, {"IMMIGR", 11}, {"RPOB", 53},
	{"MILITARY", 5}, {"FEB55", 2}, {"KOREAN", 2}, {"VIETNAM", 2}, {"WWII", 2},
	{"WORK89", 2}, {"WEEK89", 53}, {"HOUR89", 99}, {"CLASS", 10}, {"INDUSTRY", 21},
	{"OCCUP", 26}, {"MEANS", 13}, {"RIDERS", 8}, {"DEPART", 25}, {"TRAVTIME", 99},
	{"DISABL1", 3}, {"DISABL2", 3}, {"MOBILITY", 3}, {"PERSCARE", 3}, {"YEARWRK", 8},
	{"LOOKING", 3}, {"AVAIL", 5}, {"TMPABSNT", 4}, {"SEPT80", 2}, {"RVETSERV", 12},
	{"HISPANIC", 4}, {"ANCSTRY1", 36}, {"ANCSTRY2", 36}, {"MIGSTATE", 59}, {"MIGPUMA", 18},
	{"LANG2", 20}, {"RLABOR", 7}, {"ROWNCHLD", 2}, {"RRELCHLD", 2}, {"REMPLPAR", 2},
}

// AttrNames returns the 50 attribute names in schema order.
func AttrNames() []string {
	out := make([]string, len(Attrs))
	for i, a := range Attrs {
		out[i] = a.Name
	}
	return out
}

// Domain returns the domain size of the named attribute.
func Domain(name string) (int32, error) {
	for _, a := range Attrs {
		if a.Name == name {
			return a.Domain, nil
		}
	}
	return 0, fmt.Errorf("census: unknown attribute %q", name)
}

// Marginal selectivities for the attributes the queries filter on, tuned so
// the query result sizes track the ratios of Figure 27 (e.g. Q1 selects
// ≈0.37% of the relation, Q4 ≈3.2%).
//
// sampleAttr draws a value for attribute ai.
func sampleAttr(rng *rand.Rand, ai int, row []int32) int32 {
	a := Attrs[ai]
	switch a.Name {
	case "YEARSCH": // P(17) ≈ 0.015 (PhD)
		if rng.Float64() < 0.015 {
			return 17
		}
		return int32(rng.Intn(17))
	case "CITIZEN": // P(0) ≈ 0.25 (born in the US → the single largest code here)
		if rng.Float64() < 0.25 {
			return 0
		}
		return 1 + int32(rng.Intn(4))
	case "ENGLISH": // P(4) ≈ 0.009 ("not at all"), P(3) ≈ 0.0185 ("not well")
		r := rng.Float64()
		switch {
		case r < 0.009:
			return 4
		case r < 0.009+0.0185:
			return 3
		default:
			return int32(rng.Intn(3))
		}
	case "FERTIL": // P(1) ≈ 0.11 (no children), P(>4) ≈ 0.10
		r := rng.Float64()
		switch {
		case r < 0.11:
			return 1
		case r < 0.21:
			return 5 + int32(rng.Intn(9))
		default:
			return []int32{0, 2, 3, 4}[rng.Intn(4)]
		}
	case "MARITAL": // P(1) ≈ 0.15 (the widowed code used by Q3)
		if rng.Float64() < 0.15 {
			return 1
		}
		return []int32{0, 2, 3, 4}[rng.Intn(4)]
	case "RSPOUSE": // P(1 or 2) ≈ 0.30
		r := rng.Float64()
		switch {
		case r < 0.15:
			return 1
		case r < 0.30:
			return 2
		default:
			return []int32{0, 3, 4, 5, 6}[rng.Intn(5)]
		}
	case "POWSTATE": // works where born with probability 0.1
		if rng.Float64() < 0.1 {
			return row[attrIndex("POB")]
		}
		return int32(rng.Intn(int(a.Domain)))
	default:
		return int32(rng.Intn(int(a.Domain)))
	}
}

var attrIdx = func() map[string]int {
	m := make(map[string]int, len(Attrs))
	for i, a := range Attrs {
		m[a.Name] = i
	}
	return m
}()

func attrIndex(name string) int { return attrIdx[name] }

// Dependencies returns the twelve equality-generating dependencies of
// Figure 25 that clean the census data.
func Dependencies() []engine.EGD {
	egd := func(pAttr string, pVal int32, cAttr string, cTheta relation.Op, cVal int32) engine.EGD {
		return engine.EGD{
			Premise:    []engine.Atom{{Attr: pAttr, Theta: relation.EQ, C: pVal}},
			Conclusion: engine.Atom{Attr: cAttr, Theta: cTheta, C: cVal},
		}
	}
	return []engine.EGD{
		egd("CITIZEN", 0, "IMMIGR", relation.EQ, 0),   // 1
		egd("FEB55", 1, "MILITARY", relation.NE, 4),   // 2
		egd("KOREAN", 1, "MILITARY", relation.NE, 4),  // 3
		egd("VIETNAM", 1, "MILITARY", relation.NE, 4), // 4
		egd("WWII", 1, "MILITARY", relation.NE, 4),    // 5
		egd("MARITAL", 0, "RSPOUSE", relation.NE, 6),  // 6
		egd("MARITAL", 0, "RSPOUSE", relation.NE, 5),  // 7
		egd("LANG1", 2, "ENGLISH", relation.NE, 4),    // 8
		egd("RPOB", 52, "CITIZEN", relation.NE, 0),    // 9
		egd("SCHOOL", 0, "KOREAN", relation.NE, 1),    // 10
		egd("SCHOOL", 0, "FEB55", relation.NE, 1),     // 11
		egd("SCHOOL", 0, "WWII", relation.NE, 1),      // 12
	}
}

// Generate produces n clean census rows (column-major) satisfying all
// twelve dependencies. Deterministic for a given seed.
func Generate(n int, seed int64) [][]int32 {
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]int32, len(Attrs))
	for i := range cols {
		cols[i] = make([]int32, n)
	}
	deps := Dependencies()
	row := make([]int32, len(Attrs))
	for r := 0; r < n; r++ {
		for i := range Attrs {
			row[i] = sampleAttr(rng, i, row)
		}
		enforceDeps(rng, row, deps)
		for i := range Attrs {
			cols[i][r] = row[i]
		}
	}
	return cols
}

// enforceDeps resamples conclusion attributes until the row satisfies all
// dependencies. The dependency graph of Figure 25 is acyclic under the
// order below, so the loop converges in at most a few iterations.
func enforceDeps(rng *rand.Rand, row []int32, deps []engine.EGD) {
	for iter := 0; iter < 16; iter++ {
		clean := true
		for _, d := range deps {
			holds := true
			for _, a := range d.Premise {
				if !atomHolds(a, row) {
					holds = false
					break
				}
			}
			if !holds || atomHolds(d.Conclusion, row) {
				continue
			}
			clean = false
			fixConclusion(rng, row, d.Conclusion)
		}
		if clean {
			return
		}
	}
	panic("census: dependency enforcement did not converge")
}

func atomHolds(a engine.Atom, row []int32) bool {
	v := row[attrIndex(a.Attr)]
	switch a.Theta {
	case relation.EQ:
		return v == a.C
	case relation.NE:
		return v != a.C
	case relation.LT:
		return v < a.C
	case relation.LE:
		return v <= a.C
	case relation.GT:
		return v > a.C
	case relation.GE:
		return v >= a.C
	}
	return false
}

// fixConclusion assigns the conclusion attribute a value satisfying the
// conclusion atom.
func fixConclusion(rng *rand.Rand, row []int32, c engine.Atom) {
	ai := attrIndex(c.Attr)
	dom := Attrs[ai].Domain
	switch c.Theta {
	case relation.EQ:
		row[ai] = c.C
	case relation.NE:
		v := int32(rng.Intn(int(dom - 1)))
		if v >= c.C {
			v++
		}
		row[ai] = v
	default:
		// Sample until the atom holds; all Figure 25 conclusions are EQ/NE,
		// so this path exists only for user-supplied dependencies.
		for {
			v := int32(rng.Intn(int(dom)))
			row[ai] = v
			if atomHolds(c, row) {
				return
			}
		}
	}
}

// NewStore generates a clean census relation named rel with n rows.
func NewStore(rel string, n int, seed int64) (*engine.Store, error) {
	s := engine.NewStore()
	if _, err := s.AddRelation(rel, AttrNames(), Generate(n, seed)); err != nil {
		return nil, err
	}
	return s, nil
}

// MaxOrSet is the maximum or-set size used by the noise generator
// (Section 9: sizes are drawn from [2, min(8, domain)]).
const MaxOrSet = 8

// orSetSizeWeights skews the or-set sizes towards small sets so the mean
// matches the paper's measured average of 3.5 values per or-set (a uniform
// draw from [2,8] would average 5 and over-entangle the join of Q5).
var orSetSizeWeights = []struct {
	size int
	w    float64
}{{2, 0.35}, {3, 0.25}, {4, 0.15}, {5, 0.10}, {6, 0.07}, {7, 0.05}, {8, 0.03}}

func orSetSize(rng *rand.Rand, max int32) int {
	r := rng.Float64()
	acc := 0.0
	for _, sw := range orSetSizeWeights {
		acc += sw.w
		if r < acc || sw.size == int(max) {
			if sw.size > int(max) {
				return int(max)
			}
			return sw.size
		}
	}
	return int(max)
}

// AddNoise replaces a fraction density of the fields of rel by or-sets of
// size [2, min(8, domain)] containing the true value, with uniform
// probabilities. It returns the number of or-sets introduced.
func AddNoise(s *engine.Store, rel string, density float64, seed int64) (int, error) {
	r := s.Rel(rel)
	if r == nil {
		return 0, fmt.Errorf("census: unknown relation %q", rel)
	}
	rng := rand.New(rand.NewSource(seed))
	count := 0
	n := r.NumRows()
	for row := 0; row < n; row++ {
		for ai, a := range Attrs {
			if rng.Float64() >= density {
				continue
			}
			max := a.Domain
			if max > MaxOrSet {
				max = MaxOrSet
			}
			if max < 2 {
				continue // domain too small for an or-set
			}
			k := orSetSize(rng, max)
			truth := r.Cols[ai][row]
			vals := []int32{truth}
			seen := map[int32]bool{truth: true}
			for len(vals) < k {
				v := int32(rng.Intn(int(a.Domain)))
				if !seen[v] {
					seen[v] = true
					vals = append(vals, v)
				}
			}
			if err := s.SetUncertain(rel, row, a.Name, vals, nil); err != nil {
				return count, err
			}
			count++
		}
	}
	return count, nil
}

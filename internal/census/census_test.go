package census

import (
	"math"
	"testing"

	"maybms/internal/engine"
)

func TestSchemaShape(t *testing.T) {
	if len(Attrs) != 50 {
		t.Fatalf("census schema has %d attributes, want 50", len(Attrs))
	}
	seen := map[string]bool{}
	for _, a := range Attrs {
		if seen[a.Name] {
			t.Fatalf("duplicate attribute %s", a.Name)
		}
		seen[a.Name] = true
		if a.Domain < 2 {
			t.Fatalf("attribute %s has domain %d", a.Name, a.Domain)
		}
	}
	for _, need := range []string{"CITIZEN", "IMMIGR", "FEB55", "MILITARY", "KOREAN",
		"VIETNAM", "WWII", "MARITAL", "RSPOUSE", "LANG1", "ENGLISH", "RPOB",
		"SCHOOL", "YEARSCH", "POWSTATE", "POB", "FERTIL"} {
		if !seen[need] {
			t.Fatalf("missing required attribute %s", need)
		}
	}
	if _, err := Domain("CITIZEN"); err != nil {
		t.Fatal(err)
	}
	if _, err := Domain("NOPE"); err == nil {
		t.Fatal("unknown attribute must fail")
	}
}

func TestGenerateSatisfiesDependencies(t *testing.T) {
	cols := Generate(5000, 42)
	deps := Dependencies()
	for r := 0; r < 5000; r++ {
		row := make([]int32, len(Attrs))
		for i := range Attrs {
			row[i] = cols[i][r]
			if row[i] < 0 || row[i] >= Attrs[i].Domain {
				t.Fatalf("row %d attr %s out of domain: %d", r, Attrs[i].Name, row[i])
			}
		}
		for _, d := range deps {
			holds := true
			for _, a := range d.Premise {
				if !atomHolds(a, row) {
					holds = false
					break
				}
			}
			if holds && !atomHolds(d.Conclusion, row) {
				t.Fatalf("row %d violates %v", r, d)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(100, 7)
	b := Generate(100, 7)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("generation not deterministic")
			}
		}
	}
	c := Generate(100, 8)
	same := true
outer:
	for i := range a {
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
				break outer
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSelectivities(t *testing.T) {
	// Marginals must track the paper's query result ratios within a factor
	// of ~2 so the Figure 27/30 shapes carry over.
	n := 200000
	cols := Generate(n, 1)
	count := func(pred func(r int) bool) float64 {
		c := 0
		for r := 0; r < n; r++ {
			if pred(r) {
				c++
			}
		}
		return float64(c) / float64(n)
	}
	ys, ci := attrIndex("YEARSCH"), attrIndex("CITIZEN")
	q1 := count(func(r int) bool { return cols[ys][r] == 17 && cols[ci][r] == 0 })
	if q1 < 0.001 || q1 > 0.01 {
		t.Fatalf("Q1 selectivity = %.4f, want ≈0.0037", q1)
	}
	fe, rs := attrIndex("FERTIL"), attrIndex("RSPOUSE")
	q4 := count(func(r int) bool {
		return cols[fe][r] == 1 && (cols[rs][r] == 1 || cols[rs][r] == 2)
	})
	if q4 < 0.015 || q4 > 0.07 {
		t.Fatalf("Q4 selectivity = %.4f, want ≈0.032", q4)
	}
	en := attrIndex("ENGLISH")
	q6 := count(func(r int) bool { return cols[en][r] == 3 })
	if q6 < 0.008 || q6 > 0.04 {
		t.Fatalf("Q6 selectivity = %.4f, want ≈0.018", q6)
	}
}

func TestAddNoise(t *testing.T) {
	s, err := NewStore("R", 20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	count, err := AddNoise(s, "R", 0.001, 4)
	if err != nil {
		t.Fatal(err)
	}
	expect := 20000 * 50 * 0.001
	if float64(count) < expect*0.6 || float64(count) > expect*1.4 {
		t.Fatalf("noise count = %d, want ≈%g", count, expect)
	}
	if got := s.TotalPlaceholders("R"); got != count {
		t.Fatalf("placeholders = %d, want %d", got, count)
	}
	if err := s.Validate(1e-9); err != nil {
		t.Fatal(err)
	}
	st := s.Stats("R")
	if st.NumComp != count || st.NumCompGT1 != 0 {
		t.Fatalf("stats = %+v, want %d singleton components", st, count)
	}
	// Or-set sizes within [2, 8].
	hist := s.ComponentSizeHistogram("R")
	if hist[1] != count {
		t.Fatalf("histogram = %v", hist)
	}
}

func TestNoiseContainsTruth(t *testing.T) {
	// The chase must never empty a component: the clean data satisfies the
	// dependencies and every or-set contains the true value.
	s, err := NewStore("R", 5000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AddNoise(s, "R", 0.005, 6); err != nil {
		t.Fatal(err)
	}
	if err := s.ChaseEGDs("R", Dependencies()); err != nil {
		t.Fatalf("chase on noisy-but-consistent data failed: %v", err)
	}
	if err := s.Validate(1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestChaseMergesComponents(t *testing.T) {
	// At meaningful density the chase composes components whose fields
	// jointly violate a dependency (the #comp>1 column of Figure 27).
	s, err := NewStore("R", 30000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AddNoise(s, "R", 0.002, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.ChaseEGDs("R", Dependencies()); err != nil {
		t.Fatal(err)
	}
	st := s.Stats("R")
	if st.NumCompGT1 == 0 {
		t.Fatal("expected some merged components after the chase")
	}
	hist := s.ComponentSizeHistogram("R")
	if hist[2] == 0 {
		t.Fatalf("expected components of size 2, histogram %v", hist)
	}
	// Most components stay singletons (Figure 28's shape).
	if hist[1] < 10*hist[2] {
		t.Fatalf("component size distribution implausible: %v", hist)
	}
}

func TestQueriesRunAndShrink(t *testing.T) {
	s, err := NewStore("R", 20000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AddNoise(s, "R", 0.001, 12); err != nil {
		t.Fatal(err)
	}
	if err := s.ChaseEGDs("R", Dependencies()); err != nil {
		t.Fatal(err)
	}
	base := s.Stats("R")
	for _, q := range QueryNames {
		res := "res" + q
		if err := Run(s, q, "R", res); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if err := s.Validate(1e-9); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		st := s.Stats(res)
		if st.RSize >= base.RSize {
			t.Fatalf("%s result has %d rows, input %d — queries are selective", q, st.RSize, base.RSize)
		}
		// Figure 27: result representations stay close to one world.
		if st.CSize > base.CSize {
			t.Fatalf("%s: |C| grew from %d to %d", q, base.CSize, st.CSize)
		}
		s.DropRelation(res)
		if err := s.Validate(1e-9); err != nil {
			t.Fatalf("%s after drop: %v", q, err)
		}
	}
}

func TestQ1SelectivityOnStore(t *testing.T) {
	s, err := NewStore("R", 100000, 13)
	if err != nil {
		t.Fatal(err)
	}
	if err := Run(s, "Q1", "R", "P"); err != nil {
		t.Fatal(err)
	}
	got := float64(s.Rel("P").NumRows()) / 100000
	want := 0.0037 // Figure 27: 46608 of 12.5M
	if math.Abs(got-want) > want {
		t.Fatalf("Q1 selectivity %.5f, want ≈%.5f", got, want)
	}
}

func TestRunUnknownQuery(t *testing.T) {
	s, err := NewStore("R", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := Run(s, "Q9", "R", "P"); err == nil {
		t.Fatal("unknown query must fail")
	}
}

// engineStoreWithNoise is a tiny handcrafted census store for the oracle
// test in queries_oracle_test.go.
func tinyStore(t *testing.T) *engine.Store {
	t.Helper()
	n := 4
	cols := make([][]int32, len(Attrs))
	for i := range cols {
		cols[i] = make([]int32, n)
	}
	set := func(row int, attr string, v int32) {
		cols[attrIndex(attr)][row] = v
	}
	// Row 0: Q1 candidate (uncertain YEARSCH).
	set(0, "YEARSCH", 17)
	set(0, "CITIZEN", 0)
	// Row 1: Q2/Q5-left candidate.
	set(1, "CITIZEN", 1)
	set(1, "ENGLISH", 4)
	set(1, "POWSTATE", 55)
	set(1, "IMMIGR", 2)
	// Row 2: Q3/Q5-right and Q6 candidate (uncertain POWSTATE).
	set(2, "FERTIL", 5)
	set(2, "MARITAL", 1)
	set(2, "POWSTATE", 55)
	set(2, "POB", 55)
	set(2, "ENGLISH", 3)
	// Row 3: matches nothing.
	set(3, "CITIZEN", 2)
	s := engine.NewStore()
	if _, err := s.AddRelation("R", AttrNames(), cols); err != nil {
		t.Fatal(err)
	}
	if err := s.SetUncertain("R", 0, "YEARSCH", []int32{17, 5}, []float64{0.6, 0.4}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetUncertain("R", 2, "POWSTATE", []int32{55, 3}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.SetUncertain("R", 1, "IMMIGR", []int32{2, 4}, nil); err != nil {
		t.Fatal(err)
	}
	return s
}

package census

import (
	"fmt"

	"maybms/internal/engine"
	"maybms/internal/relation"
)

// This file implements the six queries of Figure 29 on the UWSDT engine.
// Each query reads the (chased) census relation and materializes its result
// under the given name; intermediate relations are dropped. Q5 is defined
// over the results of Q2 and Q3, mirroring the paper (its reported time
// excludes the subqueries).
//
// The queries run against any engine.Space: a per-session Arena over a
// Snapshot (results stay private, the concurrent path) or a Store directly
// (each operator committed in place, the deprecated one-shot path).

// QueryNames lists the queries in paper order.
var QueryNames = []string{"Q1", "Q2", "Q3", "Q4", "Q5", "Q6"}

// SQL expresses each Figure 29 query in the subset of internal/sql. Q5 is
// defined over the materialized Q2 and Q3 results (named q2 and q3),
// mirroring the paper. The SQL planner compiles these to the exact operator
// shapes of the hand-built plans below (asserted by byte-identical
// representation statistics in internal/sql's tests), so either form feeds
// the Section 9 experiments.
var SQL = map[string]string{
	"Q1": "SELECT * FROM R WHERE YEARSCH = 17 AND CITIZEN = 0",
	"Q2": "SELECT POWSTATE, CITIZEN, IMMIGR FROM R WHERE CITIZEN <> 0 AND ENGLISH > 3",
	"Q3": "SELECT POWSTATE, MARITAL, FERTIL FROM R WHERE FERTIL > 4 AND MARITAL = 1 AND POWSTATE = POB",
	"Q4": "SELECT * FROM R WHERE FERTIL = 1 AND (RSPOUSE = 1 OR RSPOUSE = 2)",
	"Q5": "SELECT * FROM q2 AS a, q3 AS b WHERE a.POWSTATE > 50 AND b.POWSTATE > 50 AND a.POWSTATE = b.POWSTATE",
	"Q6": "SELECT POWSTATE, POB FROM R WHERE ENGLISH = 3",
}

// Q1 computes σ_{YEARSCH=17 ∧ CITIZEN=0}(src): US citizens with PhD degree.
func Q1(s engine.Space, src, res string) error {
	_, err := s.Select(res, src, engine.And{engine.Eq("YEARSCH", 17), engine.Eq("CITIZEN", 0)})
	return err
}

// Q2 computes π_{POWSTATE,CITIZEN,IMMIGR}(σ_{CITIZEN≠0 ∧ ENGLISH>3}(src)):
// birthplaces of citizens born outside the US who do not speak English well.
func Q2(s engine.Space, src, res string) error {
	tmp := res + "\x00σ"
	if _, err := s.Select(tmp, src, engine.And{engine.Ne("CITIZEN", 0), engine.Gt("ENGLISH", 3)}); err != nil {
		return err
	}
	defer s.DropRelation(tmp)
	_, err := s.Project(res, tmp, "POWSTATE", "CITIZEN", "IMMIGR")
	return err
}

// Q3 computes π_{POWSTATE,MARITAL,FERTIL}(σ_{POWSTATE=POB}(σ_{FERTIL>4 ∧
// MARITAL=1}(src))): widows with more than three children living in the
// state where they were born.
func Q3(s engine.Space, src, res string) error {
	t1 := res + "\x00σ1"
	t2 := res + "\x00σ2"
	if _, err := s.Select(t1, src, engine.And{engine.Gt("FERTIL", 4), engine.Eq("MARITAL", 1)}); err != nil {
		return err
	}
	defer s.DropRelation(t1)
	if _, err := s.Select(t2, t1, engine.AttrAttr{A: "POWSTATE", Theta: relation.EQ, B: "POB"}); err != nil {
		return err
	}
	defer s.DropRelation(t2)
	_, err := s.Project(res, t2, "POWSTATE", "MARITAL", "FERTIL")
	return err
}

// Q4 computes σ_{FERTIL=1 ∧ (RSPOUSE=1 ∨ RSPOUSE=2)}(src): married persons
// with no children (the very unselective query).
func Q4(s engine.Space, src, res string) error {
	_, err := s.Select(res, src, engine.And{
		engine.Eq("FERTIL", 1),
		engine.Or{engine.Eq("RSPOUSE", 1), engine.Eq("RSPOUSE", 2)},
	})
	return err
}

// Q5 joins the Q2 and Q3 results restricted to states with IPUMS index
// greater than 50: δ_{POWSTATE→P1}(σ_{POWSTATE>50}(q2)) ⋈_{P1=P2}
// δ_{POWSTATE→P2}(σ_{POWSTATE>50}(q3)).
func Q5(s engine.Space, q2, q3, res string) error {
	a := res + "\x00l"
	b := res + "\x00r"
	al := res + "\x00lδ"
	bl := res + "\x00rδ"
	if _, err := s.Select(a, q2, engine.Gt("POWSTATE", 50)); err != nil {
		return err
	}
	defer s.DropRelation(a)
	if _, err := s.Rename(al, a, map[string]string{"POWSTATE": "P1"}); err != nil {
		return err
	}
	defer s.DropRelation(al)
	if _, err := s.Select(b, q3, engine.Gt("POWSTATE", 50)); err != nil {
		return err
	}
	defer s.DropRelation(b)
	if _, err := s.Rename(bl, b, map[string]string{"POWSTATE": "P2", "MARITAL": "MARITAL2", "FERTIL": "FERTIL2"}); err != nil {
		return err
	}
	defer s.DropRelation(bl)
	_, err := s.Join(res, al, bl, "P1", "P2")
	return err
}

// Q6 computes π_{POWSTATE,POB}(σ_{ENGLISH=3}(src)): places of birth and work
// of persons speaking English "not well".
func Q6(s engine.Space, src, res string) error {
	tmp := res + "\x00σ"
	if _, err := s.Select(tmp, src, engine.Eq("ENGLISH", 3)); err != nil {
		return err
	}
	defer s.DropRelation(tmp)
	_, err := s.Project(res, tmp, "POWSTATE", "POB")
	return err
}

// ConfQuery runs the named Figure 29 query on a pooled private arena over a
// snapshot of s and returns the confidence table of its result (Figure 19),
// computed natively on the columnar engine — no core.WSD is materialized.
// This is the across-world form of the Section 9 workload: the cost is
// driven by the result's own components, not by the base relation.
func ConfQuery(s *engine.Store, name, src string) ([]engine.TupleConf, error) {
	ar := engine.AcquireArena(s.Snapshot())
	defer engine.ReleaseArena(ar)
	res := ar.NewScratch()
	if err := Run(ar, name, src, res); err != nil {
		return nil, err
	}
	return ar.PossibleP(res)
}

// Run evaluates the named query (Q1..Q6) of Figure 29 against src,
// materializing the result as res. Q5 computes its Q2 and Q3 inputs first
// and drops them afterwards.
func Run(s engine.Space, name, src, res string) error {
	switch name {
	case "Q1":
		return Q1(s, src, res)
	case "Q2":
		return Q2(s, src, res)
	case "Q3":
		return Q3(s, src, res)
	case "Q4":
		return Q4(s, src, res)
	case "Q5":
		q2 := res + "\x00q2"
		q3 := res + "\x00q3"
		if err := Q2(s, src, q2); err != nil {
			return err
		}
		defer s.DropRelation(q2)
		if err := Q3(s, src, q3); err != nil {
			return err
		}
		defer s.DropRelation(q3)
		return Q5(s, q2, q3, res)
	case "Q6":
		return Q6(s, src, res)
	}
	return fmt.Errorf("census: unknown query %q", name)
}

package census

import (
	"testing"

	"maybms/internal/confidence"
	"maybms/internal/engine"
	"maybms/internal/relation"
	"maybms/internal/worlds"
)

// oracleQuery builds the worlds.Query equivalent of a Figure 29 query.
func oracleQuery(name string) worlds.Query {
	base := worlds.Base{Rel: "R"}
	switch name {
	case "Q1":
		return worlds.Select{Q: base, Pred: relation.And{
			relation.Eq("YEARSCH", 17), relation.Eq("CITIZEN", 0)}}
	case "Q2":
		return worlds.Project{
			Q: worlds.Select{Q: base, Pred: relation.And{
				relation.AttrConst{Attr: "CITIZEN", Theta: relation.NE, Const: relation.Int(0)},
				relation.Cmp("ENGLISH", relation.GT, 3)}},
			Attrs: []string{"POWSTATE", "CITIZEN", "IMMIGR"},
		}
	case "Q3":
		return worlds.Project{
			Q: worlds.Select{
				Q: worlds.Select{Q: base, Pred: relation.And{
					relation.Cmp("FERTIL", relation.GT, 4), relation.Eq("MARITAL", 1)}},
				Pred: relation.AttrAttr{A: "POWSTATE", Theta: relation.EQ, B: "POB"},
			},
			Attrs: []string{"POWSTATE", "MARITAL", "FERTIL"},
		}
	case "Q4":
		return worlds.Select{Q: base, Pred: relation.And{
			relation.Eq("FERTIL", 1),
			relation.Or{relation.Eq("RSPOUSE", 1), relation.Eq("RSPOUSE", 2)}}}
	case "Q5":
		left := worlds.Rename{
			Q:   worlds.Select{Q: oracleQuery("Q2"), Pred: relation.Cmp("POWSTATE", relation.GT, 50)},
			Old: "POWSTATE", New: "P1",
		}
		right := worlds.Rename{
			Q: worlds.Rename{
				Q: worlds.Rename{
					Q:   worlds.Select{Q: oracleQuery("Q3"), Pred: relation.Cmp("POWSTATE", relation.GT, 50)},
					Old: "POWSTATE", New: "P2"},
				Old: "MARITAL", New: "MARITAL2"},
			Old: "FERTIL", New: "FERTIL2",
		}
		return worlds.Select{
			Q:    worlds.Product{L: left, R: right},
			Pred: relation.AttrAttr{A: "P1", Theta: relation.EQ, B: "P2"},
		}
	case "Q6":
		return worlds.Project{
			Q:     worlds.Select{Q: base, Pred: relation.Eq("ENGLISH", 3)},
			Attrs: []string{"POWSTATE", "POB"},
		}
	}
	panic("unknown query " + name)
}

// TestQueriesAgainstOracle checks every Figure 29 query on a handcrafted
// uncertain census store against naive per-world evaluation. This ties the
// scalable engine to the formal semantics end to end.
func TestQueriesAgainstOracle(t *testing.T) {
	for _, name := range QueryNames {
		s := tinyStore(t)
		w, err := s.ToWSD()
		if err != nil {
			t.Fatal(err)
		}
		in, err := w.Rep(0)
		if err != nil {
			t.Fatal(err)
		}
		q := oracleQuery(name)
		want, err := worlds.EvalWorldSet(q, in, "P")
		if err != nil {
			t.Fatalf("%s: oracle: %v", name, err)
		}
		if err := Run(s, name, "R", "P"); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Validate(1e-9); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := s.RepRelation("P", 1<<22)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// The engine result uses the engine's attribute names; for Q5 the
		// right-hand attributes were renamed identically in the oracle, so
		// schemas agree everywhere.
		if !got.Equal(want, 1e-9) {
			t.Fatalf("%s: engine result diverges from per-world evaluation: got %d distinct worlds, want %d",
				name, len(got.Canonical()), len(want.Canonical()))
		}
	}
}

// TestChaseThenQueryAgainstOracle chases the tiny store first, then runs
// each query, comparing to the filtered-and-renormalized oracle.
func TestChaseThenQueryAgainstOracle(t *testing.T) {
	deps := Dependencies()
	for _, name := range QueryNames {
		s := tinyStore(t)
		if err := s.ChaseEGDs("R", deps); err != nil {
			t.Fatalf("%s: chase: %v", name, err)
		}
		w, err := s.ToWSD()
		if err != nil {
			t.Fatal(err)
		}
		in, err := w.Rep(0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := worlds.EvalWorldSet(oracleQuery(name), in, "P")
		if err != nil {
			t.Fatalf("%s: oracle: %v", name, err)
		}
		if err := Run(s, name, "R", "P"); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := s.RepRelation("P", 1<<22)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !got.Equal(want, 1e-9) {
			t.Fatalf("%s after chase: engine result diverges from oracle", name)
		}
	}
}

// TestConfQueryMatchesBridgeOracle checks the native confidence table of
// every Figure 29 query against the WSD-bridge path it replaced: run the
// query on an arena, convert the result through the scoped bridge, and
// score it with the confidence package.
func TestConfQueryMatchesBridgeOracle(t *testing.T) {
	for _, name := range QueryNames {
		if name == "Q5" {
			continue // defined over materialized q2/q3; covered by the sql-level tests
		}
		s := tinyStore(t)
		native, err := ConfQuery(s, name, "R")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ar := engine.NewArena(s.Snapshot())
		if err := Run(ar, name, "R", "res"); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ar.Rel("res").NumRows() == 0 {
			if len(native) != 0 {
				t.Fatalf("%s: empty result has %d possible tuples", name, len(native))
			}
			continue
		}
		w, err := ar.ToWSDOf("res")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		oracle, err := confidence.PossibleP(w, "res")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(native) != len(oracle) {
			t.Fatalf("%s: native %d tuples, oracle %d", name, len(native), len(oracle))
		}
		for i := range native {
			got := make(relation.Tuple, len(native[i].Tuple))
			for j, v := range native[i].Tuple {
				got[j] = relation.Int(int64(v))
			}
			if relation.CompareTuples(got, oracle[i].Tuple) != 0 {
				t.Fatalf("%s: tuple %d: native %v, oracle %v", name, i, got, oracle[i].Tuple)
			}
			if d := native[i].Conf - oracle[i].Conf; d > 1e-12 || d < -1e-12 {
				t.Fatalf("%s: tuple %v: native conf %g, oracle %g", name, got, native[i].Conf, oracle[i].Conf)
			}
		}
	}
}
